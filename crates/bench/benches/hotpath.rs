//! Old-vs-new hot path: chunk-at-a-time owned packets against the
//! batched, allocation-free arena pipeline.
//!
//! The seed live engine moved every packet through a per-packet
//! `ArrayQueue` hop, cloned it into a freshly allocated `Vec<Packet>`
//! per chunk, and handed each chunk to the consumer with one CAS on a
//! shared `ArrayQueue`. The rebuilt engine writes payloads into a
//! fixed-cell [`wirecap::arena::ChunkArena`] (the DMA model of §3.1 —
//! the NIC lands frames directly in chunk cells), hands chunks to the
//! consumer over an SPSC [`wirecap::spsc::BatchRing`] up to
//! [`wirecap::spsc::MAX_BATCH`] at a time, and the consumer reads
//! borrowed slices through `ChunkView` before releasing the slot.
//!
//! Both pipelines are exercised single-threaded over identical traffic
//! at M ∈ {1, 4, 16, 64}, and the measured packet rates are written to
//! `BENCH_hotpath.json` at the repository root.
//!
//! Run with `cargo bench -p bench --bench hotpath` (set
//! `CRITERION_QUICK=1` for a short CI run).

use bench::latency;
use bench::scaling;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use crossbeam::queue::ArrayQueue;
use netproto::{FlowKey, Packet, PacketBuilder};
use nicsim::livenic::LiveNic;
use std::collections::VecDeque;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Instant;
use telemetry::{clock, kind, EventTracer, QueueCounters, SpanRecord, SpanRing, SpanStamps};
use wirecap::arena::{ChunkArena, FreeSlot};
use wirecap::spsc::{BatchRing, MAX_BATCH};
use wirecap::{BackendQueue, CaptureBackend, LoopbackBackend, NicSimBackend, NicSimQueue, RxFrame};

/// Chunks per pool in both pipelines (the paper's R).
const R: usize = 64;
/// Payload bytes per packet.
const FRAME: usize = 128;

fn traffic(n: usize) -> Vec<Packet> {
    let mut b = PacketBuilder::new();
    (0..n)
        .map(|i| {
            let flow = FlowKey::udp(
                Ipv4Addr::new(131, 225, 2, (i % 200) as u8 + 1),
                (9_000 + i % 2_000) as u16,
                Ipv4Addr::new(10, 0, 0, 1),
                443,
            );
            b.build_packet(i as u64, &flow, FRAME).unwrap()
        })
        .collect()
}

/// The seed pipeline: per-packet queue hop, owned per-chunk `Vec`s,
/// chunk-at-a-time consumer handoff. Returns (packets, bytes) consumed.
fn seed_path(
    pkts: &[Packet],
    m: usize,
    nic: &ArrayQueue<Packet>,
    chunks: &ArrayQueue<Vec<Packet>>,
) -> (u64, u64) {
    let mut consumed = 0u64;
    let mut bytes = 0u64;
    let mut current: Vec<Packet> = Vec::with_capacity(m);
    let drain = |chunks: &ArrayQueue<Vec<Packet>>, consumed: &mut u64, bytes: &mut u64| {
        while let Some(chunk) = chunks.pop() {
            for p in &chunk {
                *consumed += 1;
                *bytes += p.data.len() as u64;
            }
            // The chunk's Vec (and its packet clones) die here — the
            // per-chunk allocation the seed engine paid.
            drop(chunk);
        }
    };
    for pkt in pkts {
        // NIC hop: one push + one pop + one clone per packet.
        nic.push(pkt.clone())
            .expect("nic ring drained every packet");
        let pkt = nic.pop().expect("just pushed");
        current.push(pkt);
        if current.len() == m {
            let full = std::mem::replace(&mut current, Vec::with_capacity(m));
            if chunks.push(full).is_err() {
                unreachable!("consumer keeps up in-line");
            }
            drain(chunks, &mut consumed, &mut bytes);
        }
    }
    for p in &current {
        consumed += 1;
        bytes += p.data.len() as u64;
    }
    current.clear();
    drain(chunks, &mut consumed, &mut bytes);
    (consumed, bytes)
}

/// The batched arena pipeline: payloads land in fixed cells, sealed
/// chunks move through an SPSC batch ring, the consumer reads borrowed
/// views and releases slots. Returns (packets, bytes) consumed.
fn batched_path(
    pkts: &[Packet],
    arena: &ChunkArena,
    free: &mut Vec<FreeSlot>,
    ring: &BatchRing<wirecap::arena::SealedSlot>,
) -> (u64, u64) {
    let mut consumed = 0u64;
    let mut bytes = 0u64;
    let mut staged = Vec::with_capacity(MAX_BATCH);
    let mut popped = Vec::with_capacity(MAX_BATCH);
    let drain = |free: &mut Vec<FreeSlot>,
                 popped: &mut Vec<wirecap::arena::SealedSlot>,
                 consumed: &mut u64,
                 bytes: &mut u64| {
        loop {
            popped.clear();
            if ring.pop_batch(popped, MAX_BATCH) == 0 {
                break;
            }
            for seal in popped.drain(..) {
                for p in arena.view(&seal).iter() {
                    *consumed += 1;
                    *bytes += p.data.len() as u64;
                }
                free.push(arena.release(seal));
            }
        }
    };
    let mut current = free.pop().expect("R slots free at start");
    for pkt in pkts {
        // DMA model: the frame lands directly in the chunk cell.
        if !arena.write_packet(&mut current, pkt.ts_ns, pkt.wire_len, &pkt.data) {
            unreachable!("sealed before full");
        }
        if current.filled() == arena.m() {
            staged.push(arena.seal(current));
            if staged.len() == MAX_BATCH {
                while !staged.is_empty() {
                    if ring.push_batch(&mut staged) == 0 {
                        drain(free, &mut popped, &mut consumed, &mut bytes);
                    }
                }
            }
            if free.is_empty() {
                drain(free, &mut popped, &mut consumed, &mut bytes);
            }
            current = free.pop().expect("drain refilled the freelist");
        }
    }
    // Trailing partial chunk: count in place and keep the slot free.
    let view_len = current.filled();
    if view_len > 0 {
        let seal = arena.seal(current);
        for p in arena.view(&seal).iter() {
            consumed += 1;
            bytes += p.data.len() as u64;
        }
        free.push(arena.release(seal));
    } else {
        free.push(current);
    }
    while !staged.is_empty() {
        if ring.push_batch(&mut staged) == 0 {
            drain(free, &mut popped, &mut consumed, &mut bytes);
        }
    }
    drain(free, &mut popped, &mut consumed, &mut bytes);
    (consumed, bytes)
}

/// The batched pipeline with the live engine's telemetry writes in the
/// loop: relaxed counter adds batched per chunk, the three histograms,
/// and a disabled event tracer (one relaxed load per chunk — the price
/// of having tracing available). Measured against [`batched_path`] to
/// prove the counters are free when no snapshot is taken: the
/// `telemetry_overhead` entry in `BENCH_hotpath.json`.
fn telemetry_path(
    pkts: &[Packet],
    arena: &ChunkArena,
    free: &mut Vec<FreeSlot>,
    ring: &BatchRing<wirecap::arena::SealedSlot>,
    tel: &QueueCounters,
    tracer: &EventTracer,
) -> (u64, u64) {
    let mut consumed = 0u64;
    let mut bytes = 0u64;
    let mut staged = Vec::with_capacity(MAX_BATCH);
    let mut popped = Vec::with_capacity(MAX_BATCH);
    // Consumer-side accounting is tallied locally and flushed once per
    // drain call, exactly as `LiveConsumer` flushes per inbox refill.
    let drain = |free: &mut Vec<FreeSlot>,
                 popped: &mut Vec<wirecap::arena::SealedSlot>,
                 consumed: &mut u64,
                 bytes: &mut u64| {
        let mut delivered = 0u64;
        let mut recycled = 0u64;
        loop {
            popped.clear();
            if ring.pop_batch(popped, MAX_BATCH) == 0 {
                break;
            }
            for seal in popped.drain(..) {
                for p in arena.view(&seal).iter() {
                    delivered += 1;
                    *bytes += p.data.len() as u64;
                }
                recycled += 1;
                free.push(arena.release(seal));
            }
        }
        *consumed += delivered;
        if recycled > 0 {
            tel.app.delivered_packets.add(delivered);
            tel.app.recycled_chunks.add(recycled);
        }
    };
    // Captured-packet adds are batched exactly as the live engine
    // batches them: one store per NIC pop batch, not one per packet —
    // the inner per-packet loop is byte-identical to `batched_path`.
    const NIC_POP_BATCH: usize = 256;
    let mut current = free.pop().expect("R slots free at start");
    for batch in pkts.chunks(NIC_POP_BATCH) {
        for pkt in batch {
            if !arena.write_packet(&mut current, pkt.ts_ns, pkt.wire_len, &pkt.data) {
                unreachable!("sealed before full");
            }
            if current.filled() == arena.m() {
                let fill = current.filled() as u64;
                tel.cap.sealed_chunks.inc_local();
                tel.cap.chunk_fill.record(fill);
                if tracer.is_enabled() {
                    tracer.record(0, 0, kind::CAPTURE, 0, 0, fill);
                }
                staged.push(arena.seal(current));
                if staged.len() == MAX_BATCH {
                    while !staged.is_empty() {
                        let pushed = ring.push_batch(&mut staged);
                        if pushed == 0 {
                            drain(free, &mut popped, &mut consumed, &mut bytes);
                        } else {
                            tel.cap.batch_size.record(pushed as u64);
                        }
                    }
                }
                if free.is_empty() {
                    drain(free, &mut popped, &mut consumed, &mut bytes);
                }
                current = free.pop().expect("drain refilled the freelist");
            }
        }
        tel.cap.captured_packets.add_local(batch.len() as u64);
    }
    let view_len = current.filled();
    if view_len > 0 {
        tel.cap.sealed_chunks.inc_local();
        tel.cap.partial_chunks.inc_local();
        tel.cap.chunk_fill.record(view_len as u64);
        let seal = arena.seal(current);
        let mut delivered = 0u64;
        for p in arena.view(&seal).iter() {
            delivered += 1;
            bytes += p.data.len() as u64;
        }
        consumed += delivered;
        tel.app.delivered_packets.add(delivered);
        tel.app.recycled_chunks.add(1);
        free.push(arena.release(seal));
    } else {
        free.push(current);
    }
    while !staged.is_empty() {
        let pushed = ring.push_batch(&mut staged);
        if pushed == 0 {
            drain(free, &mut popped, &mut consumed, &mut bytes);
        } else {
            tel.cap.batch_size.record(pushed as u64);
        }
    }
    drain(free, &mut popped, &mut consumed, &mut bytes);
    (consumed, bytes)
}

/// The telemetry pipeline plus the PR-3 latency instrumentation: one
/// monotonic-clock read per NIC poll batch stamping every chunk sealed
/// within it (`seal_at`, exactly as the capture thread amortizes its
/// stamp), one lazy clock read per consumer drain call (the delivery
/// stamp, shared by every chunk the drain recycles, as the engine's
/// worker loop stamps each processing burst and `LiveConsumer::refill`
/// stamps its inbox), and run-collapsed histogram recording — the
/// shared stamps make the intervals arrive in runs, so recording is a
/// compare per chunk plus one `record_repeat` flush per run
/// (`telemetry::RunRecorder`, the engine's refill recording exactly).
/// Measured against [`telemetry_path`] to bound what capture-to-
/// delivery latency metering costs on top of the counters: the
/// `latency_overhead` entry in `BENCH_hotpath.json`.
fn stamped_path(
    pkts: &[Packet],
    arena: &ChunkArena,
    free: &mut Vec<FreeSlot>,
    ring: &BatchRing<wirecap::arena::SealedSlot>,
    tel: &QueueCounters,
    tracer: &EventTracer,
) -> (u64, u64) {
    let mut consumed = 0u64;
    let mut bytes = 0u64;
    let mut staged = Vec::with_capacity(MAX_BATCH);
    let mut popped = Vec::with_capacity(MAX_BATCH);
    let drain = |free: &mut Vec<FreeSlot>,
                 popped: &mut Vec<wirecap::arena::SealedSlot>,
                 consumed: &mut u64,
                 bytes: &mut u64| {
        let mut delivered = 0u64;
        let mut recycled = 0u64;
        // Delivery stamp: one lazy clock read per drain call, shared
        // by every chunk it recycles — the engine's refill-batch
        // amortization (`LiveConsumer::refill` reads the clock once
        // per refill, `steal::worker_loop` once per burst).
        let mut delivered_ns = 0u64;
        // Latency intervals arrive in runs (one delivery stamp per
        // drain, poll-batch-shared seal stamps): a compare per chunk,
        // one histogram flush per run — `LiveConsumer::refill`'s
        // recording, exactly.
        let mut lat = telemetry::RunRecorder::new(&tel.app.latency_ns);
        loop {
            popped.clear();
            if ring.pop_batch(popped, MAX_BATCH) == 0 {
                break;
            }
            if delivered_ns == 0 {
                delivered_ns = clock::mono_ns();
            }
            for seal in popped.drain(..) {
                for p in arena.view(&seal).iter() {
                    delivered += 1;
                    *bytes += p.data.len() as u64;
                }
                let sealed_ns = seal.sealed_ns();
                if sealed_ns > 0 {
                    lat.push(delivered_ns.saturating_sub(sealed_ns));
                }
                recycled += 1;
                free.push(arena.release(seal));
            }
        }
        lat.finish();
        *consumed += delivered;
        if recycled > 0 {
            tel.app.delivered_packets.add(delivered);
            tel.app.recycled_chunks.add(recycled);
        }
    };
    const NIC_POP_BATCH: usize = 256;
    let mut current = free.pop().expect("R slots free at start");
    for batch in pkts.chunks(NIC_POP_BATCH) {
        // Seal stamp: one clock read per poll batch, shared by every
        // chunk sealed in it.
        let now_ns = clock::mono_ns();
        for pkt in batch {
            if !arena.write_packet(&mut current, pkt.ts_ns, pkt.wire_len, &pkt.data) {
                unreachable!("sealed before full");
            }
            if current.filled() == arena.m() {
                let fill = current.filled() as u64;
                tel.cap.sealed_chunks.inc_local();
                tel.cap.chunk_fill.record(fill);
                if tracer.is_enabled() {
                    tracer.record(0, 0, kind::CAPTURE, 0, 0, fill);
                }
                staged.push(arena.seal_at(current, now_ns));
                if staged.len() == MAX_BATCH {
                    while !staged.is_empty() {
                        let pushed = ring.push_batch(&mut staged);
                        if pushed == 0 {
                            drain(free, &mut popped, &mut consumed, &mut bytes);
                        } else {
                            tel.cap.batch_size.record(pushed as u64);
                        }
                    }
                }
                if free.is_empty() {
                    drain(free, &mut popped, &mut consumed, &mut bytes);
                }
                current = free.pop().expect("drain refilled the freelist");
            }
        }
        tel.cap.captured_packets.add_local(batch.len() as u64);
    }
    let view_len = current.filled();
    if view_len > 0 {
        tel.cap.sealed_chunks.inc_local();
        tel.cap.partial_chunks.inc_local();
        tel.cap.chunk_fill.record(view_len as u64);
        let seal = arena.seal_at(current, clock::mono_ns());
        let mut delivered = 0u64;
        for p in arena.view(&seal).iter() {
            delivered += 1;
            bytes += p.data.len() as u64;
        }
        let sealed_ns = seal.sealed_ns();
        if sealed_ns > 0 {
            tel.app
                .latency_ns
                .record(clock::mono_ns().saturating_sub(sealed_ns));
        }
        consumed += delivered;
        tel.app.delivered_packets.add(delivered);
        tel.app.recycled_chunks.add(1);
        free.push(arena.release(seal));
    } else {
        free.push(current);
    }
    while !staged.is_empty() {
        let pushed = ring.push_batch(&mut staged);
        if pushed == 0 {
            drain(free, &mut popped, &mut consumed, &mut bytes);
        } else {
            tel.cap.batch_size.record(pushed as u64);
        }
    }
    drain(free, &mut popped, &mut consumed, &mut bytes);
    (consumed, bytes)
}

/// 1-in-N spans at the rate a production config would run.
const SPAN_SAMPLE_N: u64 = 64;

/// The stamped pipeline plus 1-in-[`SPAN_SAMPLE_N`] span tracing:
/// every N-th sealed chunk carries a [`SpanStamps`] through the
/// pipeline (seal + publish stamps shared with the batch clock read),
/// and its delivery completes a [`SpanRecord`] — per-stage computation,
/// five `Log2Histogram` records, and one mutex-guarded [`SpanRing`]
/// push. Measured against [`stamped_path`] to bound what enabling
/// `span_sample_n` costs on top of latency metering: the
/// `span_tracing` entry in `BENCH_hotpath.json`, gated at ≤ 3% by
/// `scripts/check.sh`.
fn spans_path(
    pkts: &[Packet],
    arena: &ChunkArena,
    free: &mut Vec<FreeSlot>,
    ring: &BatchRing<wirecap::arena::SealedSlot>,
    tel: &QueueCounters,
    tracer: &EventTracer,
    spans: &SpanRing,
) -> (u64, u64) {
    let mut consumed = 0u64;
    let mut bytes = 0u64;
    let mut staged = Vec::with_capacity(MAX_BATCH);
    let mut popped = Vec::with_capacity(MAX_BATCH);
    // Sampled chunks in flight, keyed by seal sequence. The SPSC ring
    // preserves order single-threaded, so matching is front-of-queue.
    let mut pending: VecDeque<(u64, SpanStamps)> = VecDeque::new();
    let mut seal_seq = 0u64;
    let mut deliver_seq = 0u64;
    let drain = |free: &mut Vec<FreeSlot>,
                 popped: &mut Vec<wirecap::arena::SealedSlot>,
                 consumed: &mut u64,
                 bytes: &mut u64,
                 pending: &mut VecDeque<(u64, SpanStamps)>,
                 deliver_seq: &mut u64| {
        let mut delivered = 0u64;
        let mut recycled = 0u64;
        // One lazy delivery stamp per drain call (see `stamped_path`);
        // span stamps reuse it, as the engine's concurrent worker
        // reuses its burst stamp.
        let mut delivered_ns = 0u64;
        // Latency intervals arrive in runs (one delivery stamp per
        // drain, poll-batch-shared seal stamps): a compare per chunk,
        // one histogram flush per run — `LiveConsumer::refill`'s
        // recording, exactly.
        let mut lat = telemetry::RunRecorder::new(&tel.app.latency_ns);
        loop {
            popped.clear();
            if ring.pop_batch(popped, MAX_BATCH) == 0 {
                break;
            }
            if delivered_ns == 0 {
                delivered_ns = clock::mono_ns();
            }
            for seal in popped.drain(..) {
                for p in arena.view(&seal).iter() {
                    delivered += 1;
                    *bytes += p.data.len() as u64;
                }
                let sealed_ns = seal.sealed_ns();
                if sealed_ns > 0 {
                    lat.push(delivered_ns.saturating_sub(sealed_ns));
                }
                if pending.front().is_some_and(|(s, _)| *s == *deliver_seq) {
                    let (s, mut st) = pending.pop_front().expect("front checked");
                    // Per-queue consumer convention: acquisition and
                    // delivery collapse onto the batch delivery stamp.
                    st.acquire_started_ns = delivered_ns;
                    st.acquired_ns = delivered_ns;
                    st.deliver_start_ns = delivered_ns;
                    st.deliver_end_ns = delivered_ns;
                    let rec = SpanRecord::from_stamps(
                        0,
                        s,
                        arena.m() as u32,
                        None,
                        false,
                        &st,
                        delivered_ns,
                    );
                    tel.app.stage_backend_ns.record(rec.stage_backend_ns);
                    tel.app.stage_queue_wait_ns.record(rec.stage_queue_wait_ns);
                    tel.app.stage_claim_ns.record(rec.stage_claim_ns);
                    tel.app.stage_reorder_ns.record(rec.stage_reorder_ns);
                    tel.app.stage_deliver_ns.record(rec.stage_deliver_ns);
                    spans.push(rec);
                }
                *deliver_seq += 1;
                recycled += 1;
                free.push(arena.release(seal));
            }
        }
        lat.finish();
        *consumed += delivered;
        if recycled > 0 {
            tel.app.delivered_packets.add(delivered);
            tel.app.recycled_chunks.add(recycled);
        }
    };
    const NIC_POP_BATCH: usize = 256;
    let mut current = free.pop().expect("R slots free at start");
    for batch in pkts.chunks(NIC_POP_BATCH) {
        let now_ns = clock::mono_ns();
        for pkt in batch {
            if !arena.write_packet(&mut current, pkt.ts_ns, pkt.wire_len, &pkt.data) {
                unreachable!("sealed before full");
            }
            if current.filled() == arena.m() {
                let fill = current.filled() as u64;
                tel.cap.sealed_chunks.inc_local();
                tel.cap.chunk_fill.record(fill);
                if tracer.is_enabled() {
                    tracer.record(0, 0, kind::CAPTURE, 0, 0, fill);
                }
                if seal_seq.is_multiple_of(SPAN_SAMPLE_N) {
                    pending.push_back((
                        seal_seq,
                        SpanStamps {
                            sealed_ns: now_ns,
                            published_ns: now_ns,
                            ..Default::default()
                        },
                    ));
                }
                seal_seq += 1;
                staged.push(arena.seal_at(current, now_ns));
                if staged.len() == MAX_BATCH {
                    while !staged.is_empty() {
                        let pushed = ring.push_batch(&mut staged);
                        if pushed == 0 {
                            drain(
                                free,
                                &mut popped,
                                &mut consumed,
                                &mut bytes,
                                &mut pending,
                                &mut deliver_seq,
                            );
                        } else {
                            tel.cap.batch_size.record(pushed as u64);
                        }
                    }
                }
                if free.is_empty() {
                    drain(
                        free,
                        &mut popped,
                        &mut consumed,
                        &mut bytes,
                        &mut pending,
                        &mut deliver_seq,
                    );
                }
                current = free.pop().expect("drain refilled the freelist");
            }
        }
        tel.cap.captured_packets.add_local(batch.len() as u64);
    }
    let view_len = current.filled();
    if view_len > 0 {
        tel.cap.sealed_chunks.inc_local();
        tel.cap.partial_chunks.inc_local();
        tel.cap.chunk_fill.record(view_len as u64);
        let seal = arena.seal_at(current, clock::mono_ns());
        let mut delivered = 0u64;
        for p in arena.view(&seal).iter() {
            delivered += 1;
            bytes += p.data.len() as u64;
        }
        let sealed_ns = seal.sealed_ns();
        if sealed_ns > 0 {
            tel.app
                .latency_ns
                .record(clock::mono_ns().saturating_sub(sealed_ns));
        }
        consumed += delivered;
        tel.app.delivered_packets.add(delivered);
        tel.app.recycled_chunks.add(1);
        free.push(arena.release(seal));
    } else {
        free.push(current);
    }
    while !staged.is_empty() {
        let pushed = ring.push_batch(&mut staged);
        if pushed == 0 {
            drain(
                free,
                &mut popped,
                &mut consumed,
                &mut bytes,
                &mut pending,
                &mut deliver_seq,
            );
        } else {
            tel.cap.batch_size.record(pushed as u64);
        }
    }
    drain(
        free,
        &mut popped,
        &mut consumed,
        &mut bytes,
        &mut pending,
        &mut deliver_seq,
    );
    (consumed, bytes)
}

/// The stamped pipeline plus the capture-to-disk writer's encode work:
/// every delivered packet is serialized as a pcapng Enhanced Packet
/// Block into a reused batch buffer, with one simulated commit (and one
/// batched disk-counter add) per pop batch — the `capdisk` writer
/// thread's `push_packet`/`commit_batch` split, minus the actual
/// `write(2)`, so the number isolates the CPU cost of the encode copy.
/// In the real sink this work runs on a dedicated writer thread, not
/// the capture thread; the `disk_writer` entry in `BENCH_hotpath.json`
/// bounds how much headroom that thread needs. The encode mirrors the
/// `RotatingWriter` discipline exactly: a per-writer `EpbTemplate`
/// encoding into cursor-addressed batch storage, so the measured cost
/// is header patching plus the unavoidable payload copy (check.sh
/// gates the overhead at 30% at m=1 and 50% at the largest m — see
/// EXPERIMENTS.md, known deviations, for why the large-m ratio is
/// memory-traffic-bound).
fn disk_writer_path(
    pkts: &[Packet],
    arena: &ChunkArena,
    free: &mut Vec<FreeSlot>,
    ring: &BatchRing<wirecap::arena::SealedSlot>,
    tel: &QueueCounters,
    tracer: &EventTracer,
    enc: &mut Vec<u8>,
) -> (u64, u64) {
    const SNAPLEN: u32 = 65_535;
    // One precomputed EPB header per writer, patched per packet — the
    // same template the real `RotatingWriter` holds.
    let tmpl = capdisk::EpbTemplate::new(SNAPLEN);
    let mut consumed = 0u64;
    let mut bytes = 0u64;
    let mut staged = Vec::with_capacity(MAX_BATCH);
    let mut popped = Vec::with_capacity(MAX_BATCH);
    let tmpl_ref = &tmpl;
    let drain = move |free: &mut Vec<FreeSlot>,
                      popped: &mut Vec<wirecap::arena::SealedSlot>,
                      enc: &mut Vec<u8>,
                      consumed: &mut u64,
                      bytes: &mut u64| {
        let mut delivered = 0u64;
        let mut recycled = 0u64;
        // One lazy delivery stamp per drain call (see `stamped_path`).
        let mut delivered_ns = 0u64;
        // Latency intervals arrive in runs (one delivery stamp per
        // drain, poll-batch-shared seal stamps): a compare per chunk,
        // one histogram flush per run — `LiveConsumer::refill`'s
        // recording, exactly.
        let mut lat = telemetry::RunRecorder::new(&tel.app.latency_ns);
        loop {
            popped.clear();
            if ring.pop_batch(popped, MAX_BATCH) == 0 {
                break;
            }
            if delivered_ns == 0 {
                delivered_ns = clock::mono_ns();
            }
            // Cursor into the batch buffer, reset at each commit —
            // the `RotatingWriter` encode discipline: pre-sized
            // zeroed storage, pure slice stores per packet.
            let mut cursor = 0usize;
            for seal in popped.drain(..) {
                for p in arena.view(&seal).iter() {
                    delivered += 1;
                    *bytes += p.data.len() as u64;
                    let len = tmpl_ref.encoded_len(p.data.len());
                    if cursor + len > enc.len() {
                        enc.resize((enc.len() * 2).max(cursor + len).max(1 << 16), 0);
                    }
                    tmpl_ref.encode_into(
                        &mut enc[cursor..cursor + len],
                        p.ts_ns,
                        p.wire_len,
                        p.data,
                    );
                    cursor += len;
                }
                let sealed_ns = seal.sealed_ns();
                if sealed_ns > 0 {
                    lat.push(delivered_ns.saturating_sub(sealed_ns));
                }
                recycled += 1;
                free.push(arena.release(seal));
            }
            // Simulated commit: one batched counter add per pop
            // batch, standing in for the single `write_all` the real
            // writer issues here.
            tel.disk.disk_written_bytes.add(cursor as u64);
            black_box(&enc[..cursor]);
        }
        lat.finish();
        *consumed += delivered;
        if recycled > 0 {
            tel.app.delivered_packets.add(delivered);
            tel.app.recycled_chunks.add(recycled);
            tel.disk.disk_written_packets.add(delivered);
        }
    };
    const NIC_POP_BATCH: usize = 256;
    let mut current = free.pop().expect("R slots free at start");
    for batch in pkts.chunks(NIC_POP_BATCH) {
        let now_ns = clock::mono_ns();
        for pkt in batch {
            if !arena.write_packet(&mut current, pkt.ts_ns, pkt.wire_len, &pkt.data) {
                unreachable!("sealed before full");
            }
            if current.filled() == arena.m() {
                let fill = current.filled() as u64;
                tel.cap.sealed_chunks.inc_local();
                tel.cap.chunk_fill.record(fill);
                if tracer.is_enabled() {
                    tracer.record(0, 0, kind::CAPTURE, 0, 0, fill);
                }
                staged.push(arena.seal_at(current, now_ns));
                if staged.len() == MAX_BATCH {
                    while !staged.is_empty() {
                        let pushed = ring.push_batch(&mut staged);
                        if pushed == 0 {
                            drain(free, &mut popped, enc, &mut consumed, &mut bytes);
                        } else {
                            tel.cap.batch_size.record(pushed as u64);
                        }
                    }
                }
                if free.is_empty() {
                    drain(free, &mut popped, enc, &mut consumed, &mut bytes);
                }
                current = free.pop().expect("drain refilled the freelist");
            }
        }
        tel.cap.captured_packets.add_local(batch.len() as u64);
    }
    let view_len = current.filled();
    if view_len > 0 {
        tel.cap.sealed_chunks.inc_local();
        tel.cap.partial_chunks.inc_local();
        tel.cap.chunk_fill.record(view_len as u64);
        let seal = arena.seal_at(current, clock::mono_ns());
        let mut delivered = 0u64;
        let mut cursor = 0usize;
        for p in arena.view(&seal).iter() {
            delivered += 1;
            bytes += p.data.len() as u64;
            let len = tmpl.encoded_len(p.data.len());
            if cursor + len > enc.len() {
                enc.resize((enc.len() * 2).max(cursor + len).max(1 << 16), 0);
            }
            tmpl.encode_into(&mut enc[cursor..cursor + len], p.ts_ns, p.wire_len, p.data);
            cursor += len;
        }
        let sealed_ns = seal.sealed_ns();
        if sealed_ns > 0 {
            tel.app
                .latency_ns
                .record(clock::mono_ns().saturating_sub(sealed_ns));
        }
        tel.disk.disk_written_bytes.add(cursor as u64);
        black_box(&enc[..cursor]);
        consumed += delivered;
        tel.app.delivered_packets.add(delivered);
        tel.app.recycled_chunks.add(1);
        tel.disk.disk_written_packets.add(delivered);
        free.push(arena.release(seal));
    } else {
        free.push(current);
    }
    while !staged.is_empty() {
        let pushed = ring.push_batch(&mut staged);
        if pushed == 0 {
            drain(free, &mut popped, enc, &mut consumed, &mut bytes);
        } else {
            tel.cap.batch_size.record(pushed as u64);
        }
    }
    drain(free, &mut popped, enc, &mut consumed, &mut bytes);
    (consumed, bytes)
}

/// Packets moved per NIC hop in the dispatch benchmark — the engine's
/// `NIC_POP_BATCH`, so the vtable cost is amortized exactly as the
/// capture thread amortizes it.
const DISPATCH_BATCH: usize = 256;

/// Static-dispatch half of the `backend_dispatch` pair: refill one NIC
/// queue, drain it through the monomorphized
/// [`NicSimQueue::poll_batch_mono`] (the shape the capture loop had
/// before the `CaptureBackend` trait), landing every frame in an arena
/// cell. Returns (packets, bytes) consumed.
fn dispatch_mono(
    pkts: &[Packet],
    backend: &NicSimBackend,
    queue: &NicSimQueue,
    arena: &ChunkArena,
    free: &mut Vec<FreeSlot>,
) -> (u64, u64) {
    let mut consumed = 0u64;
    let mut bytes = 0u64;
    let mut current = free.pop().expect("R slots free at start");
    for batch in pkts.chunks(DISPATCH_BATCH) {
        let landed = backend.inject_batch(batch);
        debug_assert_eq!(landed as usize, batch.len());
        let polled = queue.poll_batch_mono(batch.len(), |frame: RxFrame<'_>| {
            if !arena.write_packet(&mut current, frame.ts_ns, frame.wire_len, frame.data) {
                unreachable!("sealed before full");
            }
            consumed += 1;
            bytes += frame.data.len() as u64;
            if current.filled() == arena.m() {
                let next = free.pop().expect("released slots refill the freelist");
                let full = std::mem::replace(&mut current, next);
                free.push(arena.release(arena.seal(full)));
            }
        });
        debug_assert_eq!(polled, batch.len());
    }
    if current.filled() > 0 {
        free.push(arena.release(arena.seal(current)));
    } else {
        free.push(current);
    }
    (consumed, bytes)
}

/// Dynamic-dispatch half: byte-identical sink work, but the queue is
/// held as `Arc<dyn BackendQueue>` exactly as `capture_thread` holds it
/// — one virtual `poll_batch` (with a `&mut dyn FnMut` sink) and one
/// virtual `recycle` per batch. Measured against [`dispatch_mono`];
/// `scripts/check.sh` gates `backend_dispatch_overhead` at ≤ 2%.
fn dispatch_dyn(
    pkts: &[Packet],
    backend: &NicSimBackend,
    queue: &Arc<dyn BackendQueue>,
    arena: &ChunkArena,
    free: &mut Vec<FreeSlot>,
) -> (u64, u64) {
    let mut consumed = 0u64;
    let mut bytes = 0u64;
    let mut current = free.pop().expect("R slots free at start");
    for batch in pkts.chunks(DISPATCH_BATCH) {
        let landed = backend.inject_batch(batch);
        debug_assert_eq!(landed as usize, batch.len());
        let polled = queue
            .poll_batch(batch.len(), &mut |frame: RxFrame<'_>| {
                if !arena.write_packet(&mut current, frame.ts_ns, frame.wire_len, frame.data) {
                    unreachable!("sealed before full");
                }
                consumed += 1;
                bytes += frame.data.len() as u64;
                if current.filled() == arena.m() {
                    let next = free.pop().expect("released slots refill the freelist");
                    let full = std::mem::replace(&mut current, next);
                    free.push(arena.release(arena.seal(full)));
                }
            })
            .expect("nicsim poll is infallible");
        debug_assert_eq!(polled, batch.len());
        queue.recycle(polled).expect("nicsim recycle is infallible");
    }
    if current.filled() > 0 {
        free.push(arena.release(arena.seal(current)));
    } else {
        free.push(current);
    }
    (consumed, bytes)
}

/// Flow-universe size for the flow-tracking entry: one million
/// concurrent flows, the scale the `flowstat` table is sized for.
const FLOW_FLOWS: usize = 1 << 20;
/// Heavy hitters carrying most of the traffic (a border-link mix:
/// a few elephant flows over a long mouse tail).
const FLOW_ELEPHANTS: usize = 16;
/// Packets per simulated chunk in the flow-tracking comparison.
const FLOW_CHUNK: usize = 64;
/// Filter repetitions in the baseline consumer the flow stage rides
/// beside. The paper's application workloads apply the BPF filter `x`
/// times per packet, with `x = 300` for the "heavy processing load"
/// runs (Figs. 9-10); `x = 10` is a deliberately *light* consumer — an
/// order of magnitude below the paper's heavy setting — so the ≤ 10%
/// overhead gate holds even when the application does little work, not
/// just when its own cost dwarfs the flow stage.
const FLOW_FILTER_X: u32 = 10;

/// Deterministic 5-tuple for flow id `i` (unique for i < 2^24).
fn flow_id_key(i: usize) -> FlowKey {
    FlowKey::udp(
        Ipv4Addr::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8),
        9_000 + (i % 40_000) as u16,
        Ipv4Addr::new(131, 225, 2, 1),
        443,
    )
}

/// Border-trace-shaped bench traffic: ~75% of packets from
/// [`FLOW_ELEPHANTS`] elephant flows, the rest spread uniformly over
/// the full [`FLOW_FLOWS`] universe.
fn flow_traffic(n: usize) -> Vec<Packet> {
    let mut rng = sim::Pcg32::seeded(0x5eed_f10f);
    let mut b = PacketBuilder::new();
    (0..n)
        .map(|i| {
            let id = if rng.chance(0.75) {
                // Elephants sit at distinct ids spread across the table.
                (rng.gen_range_u32(FLOW_ELEPHANTS as u32) as usize) * 65_537
            } else {
                rng.gen_range_u32(FLOW_FLOWS as u32) as usize
            };
            b.build_packet(i as u64, &flow_id_key(id), FRAME).unwrap()
        })
        .collect()
}

/// Baseline consumer work for the flow-tracking comparison: the
/// per-packet BPF filter pass of `pkt_handler` (applied
/// [`FLOW_FILTER_X`] times, see that constant for the rationale),
/// chunk at a time — exactly the handler work the flow sink rides
/// beside in `run_pooled_flows`.
fn filter_only_path(pkts: &[Packet], handler: &mut apps::PktHandler) -> (u64, u64) {
    let mut consumed = 0u64;
    let mut bytes = 0u64;
    for chunk in pkts.chunks(FLOW_CHUNK) {
        for p in chunk {
            black_box(handler.handle_bytes(&p.data));
            consumed += 1;
            bytes += p.data.len() as u64;
        }
    }
    (consumed, bytes)
}

/// The same filter pass plus the full per-chunk flow-analytics stage:
/// two-pass batched `record_frames` into a pre-warmed million-entry
/// table, top-K offers, and the per-chunk telemetry delta flush.
/// Measured against [`filter_only_path`]; `scripts/check.sh` gates
/// `flow_tracking_overhead` at ≤ 10%.
fn flow_tracking_path(
    pkts: &[Packet],
    handler: &mut apps::PktHandler,
    sink: &mut flowstat::FlowSink,
    tel: &QueueCounters,
) -> (u64, u64) {
    let mut consumed = 0u64;
    let mut bytes = 0u64;
    for chunk in pkts.chunks(FLOW_CHUNK) {
        for p in chunk {
            black_box(handler.handle_bytes(&p.data));
            consumed += 1;
            bytes += p.data.len() as u64;
        }
        sink.record_frames(chunk.iter().map(|p| &p.data[..]));
        let deltas = sink.drain_deltas();
        let flow = &tel.flow.0;
        flow.flow_tracked_packets.add_local(deltas.packets);
        flow.flow_evicted_flows.add_local(deltas.evicted_flows);
        flow.flow_evicted_packets.add_local(deltas.evicted_packets);
        flow.flow_hash_collisions.add_local(deltas.hash_collisions);
        flow.flow_table_occupancy.set(deltas.occupancy);
    }
    (consumed, bytes)
}

/// Times `f` over `rounds` passes of `n_packets` and returns the
/// median-round packets/s. The median (not the mean over the whole
/// wall-clock span) keeps one preempted round from dragging the
/// reported rate for the other `rounds - 1`.
fn measure(mut f: impl FnMut() -> (u64, u64), n_packets: usize, rounds: usize) -> f64 {
    // Warm-up pass.
    black_box(f());
    let mut times = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        let (consumed, bytes) = black_box(f());
        times.push(start.elapsed().as_secs_f64());
        assert_eq!(consumed as usize, n_packets);
        assert_eq!(bytes as usize, n_packets * FRAME);
    }
    times.sort_by(|x, y| x.partial_cmp(y).expect("finite round times"));
    n_packets as f64 / times[times.len() / 2]
}

/// Times two closures with interleaved rounds (a, b, a, b, …) so clock
/// drift and thermal effects hit both equally. Returns the best-round
/// packets/s for each plus a noise-robust estimate of b's slowdown
/// relative to a (`1 - speed_b/speed_a`).
///
/// The per-path minimum handles additive noise (preemption and
/// frequency dips only ever add time), but on a busy host the two
/// minima can land in different load regimes and skew the ratio by
/// more than the small delta under measurement. The overhead estimate
/// therefore comes from the *median of per-round time ratios*: a and b
/// of the same round run back-to-back under (nearly) the same load, so
/// sustained slowdowns cancel in the ratio and the median discards the
/// rounds where a spike hit only one side. With
/// [`PairOrder::Alternating`] the within-round execution order also
/// alternates (a-then-b, b-then-a, …): whichever side runs second
/// inherits the first side's warmed caches and any tail-end of its
/// interference, and on a single-core host that order bias alone can
/// exceed a small delta under measurement — alternating makes it
/// cancel in the median instead of stacking onto one side.
/// Returns `(pps_a, pps_b, overhead_clamped, overhead_raw)`: the raw
/// value keeps its sign so the JSON shows when a delta sits below the
/// noise floor (slightly negative) rather than silently reading as a
/// true zero; the clamped value is what the gates consume.
/// Within-round execution order for [`measure_pair`].
#[derive(Clone, Copy, PartialEq)]
enum PairOrder {
    /// Alternate a-then-b / b-then-a per round. The right choice for
    /// *stateless* pairs (both closures touch the same working set the
    /// same way each round): order bias cancels in the median.
    Alternating,
    /// Run a-then-b every round. The right choice when one side owns
    /// large persistent state (the flow pair's pre-warmed 32 MiB
    /// table): alternation would make each round's cache predecessor
    /// heterogeneous — half the instrumented rounds following
    /// themselves, half following the baseline — and the median would
    /// straddle two populations instead of measuring one. A fixed
    /// order gives every round the same predecessor.
    Fixed,
}

fn measure_pair(
    mut a: impl FnMut() -> (u64, u64),
    mut b: impl FnMut() -> (u64, u64),
    n_packets: usize,
    rounds: usize,
    order: PairOrder,
) -> (f64, f64, f64, f64) {
    black_box(a());
    black_box(b());
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    let mut ratios = Vec::with_capacity(rounds);
    let timed = |f: &mut dyn FnMut() -> (u64, u64)| {
        let start = Instant::now();
        let (consumed, bytes) = black_box(f());
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(consumed as usize, n_packets);
        assert_eq!(bytes as usize, n_packets * FRAME);
        elapsed
    };
    let mut times = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let (time_a, time_b) = if order == PairOrder::Fixed || round % 2 == 0 {
            let ta = timed(&mut a);
            let tb = timed(&mut b);
            (ta, tb)
        } else {
            let tb = timed(&mut b);
            let ta = timed(&mut a);
            (ta, tb)
        };
        best_a = best_a.min(time_a);
        best_b = best_b.min(time_b);
        times.push((time_a, time_b));
    }
    match order {
        // Each ratio spans a two-round block — one a-then-b round plus
        // one b-then-a round — so order bias cancels *within every
        // sample*, rather than leaving the median to split two
        // oppositely-biased populations.
        PairOrder::Alternating => {
            for block in times.chunks_exact(2) {
                ratios.push((block[0].0 + block[1].0) / (block[0].1 + block[1].1));
            }
        }
        PairOrder::Fixed => {
            for (time_a, time_b) in times {
                ratios.push(time_a / time_b);
            }
        }
    }
    ratios.sort_by(|x, y| x.partial_cmp(y).expect("finite round times"));
    // Clamp at zero for the gates: when the delta under test is below
    // the noise floor the median ratio can land a hair past 1.0, and a
    // "negative overhead" would only confuse the gate thresholds. The
    // raw signed value rides along so the JSON distinguishes "truly
    // zero" from "lost in the noise".
    let raw = 1.0 - ratios[ratios.len() / 2];
    (
        n_packets as f64 / best_a,
        n_packets as f64 / best_b,
        raw.max(0.0),
        raw,
    )
}

fn quick() -> bool {
    std::env::var_os("CRITERION_QUICK").is_some() || std::env::args().any(|a| a == "--quick")
}

fn bench_hotpath(c: &mut Criterion) {
    let ms = [1usize, 4, 16, 64];
    let n_packets = if quick() { 16 * 1024 } else { 64 * 1024 };
    let rounds = if quick() { 3 } else { 10 };
    // The overhead comparisons resolve small deltas, so their
    // median-of-ratios needs more rounds than the headline numbers even
    // in quick mode; each round is sub-millisecond, so this stays cheap.
    let pair_rounds = 121;
    let pkts = traffic(n_packets);

    let mut results = Vec::new();
    for &m in &ms {
        // Seed fixtures (reused across rounds, like the seed engine).
        let nic: ArrayQueue<Packet> = ArrayQueue::new(R * m.max(2));
        let chunks: ArrayQueue<Vec<Packet>> = ArrayQueue::new(R);
        // Arena fixtures.
        let (arena, mut free) = ChunkArena::with_slots(R, m, FRAME);
        let ring: BatchRing<wirecap::arena::SealedSlot> = BatchRing::with_capacity(R);

        let tel = QueueCounters::new();
        let tracer = EventTracer::new(1024);

        let seed_pps = measure(|| seed_path(&pkts, m, &nic, &chunks), n_packets, rounds);
        let (batched_pps, telemetry_pps, telemetry_overhead, telemetry_overhead_raw) = {
            let free_cell = std::cell::RefCell::new(std::mem::take(&mut free));
            let r = measure_pair(
                || batched_path(&pkts, &arena, &mut free_cell.borrow_mut(), &ring),
                || {
                    telemetry_path(
                        &pkts,
                        &arena,
                        &mut free_cell.borrow_mut(),
                        &ring,
                        &tel,
                        &tracer,
                    )
                },
                n_packets,
                pair_rounds,
                PairOrder::Alternating,
            );
            free = free_cell.into_inner();
            r
        };
        // Latency stamping is measured against the telemetry baseline
        // (not the bare batched path): the 5% budget in check.sh bounds
        // what the *stamp itself* adds to an already-instrumented loop.
        let (_, latency_stamping_pps, latency_overhead, latency_overhead_raw) = {
            let free_cell = std::cell::RefCell::new(std::mem::take(&mut free));
            let r = measure_pair(
                || {
                    telemetry_path(
                        &pkts,
                        &arena,
                        &mut free_cell.borrow_mut(),
                        &ring,
                        &tel,
                        &tracer,
                    )
                },
                || {
                    stamped_path(
                        &pkts,
                        &arena,
                        &mut free_cell.borrow_mut(),
                        &ring,
                        &tel,
                        &tracer,
                    )
                },
                n_packets,
                pair_rounds,
                PairOrder::Alternating,
            );
            free = free_cell.into_inner();
            r
        };
        // Span tracing is measured against the stamped baseline: the
        // 3% budget in check.sh bounds what 1-in-N lifecycle spans add
        // to an already latency-metered loop.
        let spans_ring = SpanRing::with_capacity(1024);
        let (_, span_tracing_pps, span_tracing_overhead, span_tracing_overhead_raw) = {
            let free_cell = std::cell::RefCell::new(std::mem::take(&mut free));
            let r = measure_pair(
                || {
                    stamped_path(
                        &pkts,
                        &arena,
                        &mut free_cell.borrow_mut(),
                        &ring,
                        &tel,
                        &tracer,
                    )
                },
                || {
                    spans_path(
                        &pkts,
                        &arena,
                        &mut free_cell.borrow_mut(),
                        &ring,
                        &tel,
                        &tracer,
                        &spans_ring,
                    )
                },
                n_packets,
                pair_rounds,
                PairOrder::Alternating,
            );
            free = free_cell.into_inner();
            r
        };
        // The disk-writer encode is measured against the stamped
        // baseline: the extra cost is exactly what the capdisk writer
        // thread adds (pcapng encode + batched commit bookkeeping).
        let mut enc: Vec<u8> = vec![0u8; 64 << 10];
        let (_, disk_writer_pps, disk_writer_overhead, disk_writer_overhead_raw) = {
            let free_cell = std::cell::RefCell::new(std::mem::take(&mut free));
            let r = measure_pair(
                || {
                    stamped_path(
                        &pkts,
                        &arena,
                        &mut free_cell.borrow_mut(),
                        &ring,
                        &tel,
                        &tracer,
                    )
                },
                || {
                    disk_writer_path(
                        &pkts,
                        &arena,
                        &mut free_cell.borrow_mut(),
                        &ring,
                        &tel,
                        &tracer,
                        &mut enc,
                    )
                },
                n_packets,
                pair_rounds,
                PairOrder::Alternating,
            );
            free = free_cell.into_inner();
            r
        };
        let speedup = batched_pps / seed_pps;
        eprintln!(
            "hotpath M={m:>2}: seed {seed_pps:>12.0} p/s, batched {batched_pps:>12.0} p/s, \
             speedup {speedup:.2}x, telemetry {telemetry_pps:>12.0} p/s \
             (overhead {:.2}%), stamped {latency_stamping_pps:>12.0} p/s \
             (latency overhead {:.2}%), spans {span_tracing_pps:>12.0} p/s \
             (span overhead {:.2}%), disk writer {disk_writer_pps:>12.0} p/s \
             (encode overhead {:.2}%)",
            telemetry_overhead * 100.0,
            latency_overhead * 100.0,
            span_tracing_overhead * 100.0,
            disk_writer_overhead * 100.0
        );
        results.push(HotpathResult {
            m,
            seed_pps,
            batched_pps,
            speedup,
            telemetry_pps,
            telemetry_overhead,
            telemetry_overhead_raw,
            latency_stamping_pps,
            latency_overhead,
            latency_overhead_raw,
            span_tracing_pps,
            span_tracing_overhead,
            span_tracing_overhead_raw,
            disk_writer_pps,
            disk_writer_overhead,
            disk_writer_overhead_raw,
        });

        // Criterion display entries over the same closures.
        let mut g = c.benchmark_group(format!("hotpath_m{m}"));
        g.throughput(Throughput::Elements(n_packets as u64));
        g.bench_function("seed_chunk_at_a_time", |b| {
            b.iter(|| seed_path(&pkts, m, &nic, &chunks))
        });
        g.bench_function("batched_arena", |b| {
            b.iter(|| batched_path(&pkts, &arena, &mut free, &ring))
        });
        g.bench_function("batched_arena_telemetry", |b| {
            b.iter(|| telemetry_path(&pkts, &arena, &mut free, &ring, &tel, &tracer))
        });
        g.bench_function("latency_stamping", |b| {
            b.iter(|| stamped_path(&pkts, &arena, &mut free, &ring, &tel, &tracer))
        });
        g.bench_function("span_tracing", |b| {
            b.iter(|| spans_path(&pkts, &arena, &mut free, &ring, &tel, &tracer, &spans_ring))
        });
        g.bench_function("disk_writer_encode", |b| {
            b.iter(|| disk_writer_path(&pkts, &arena, &mut free, &ring, &tel, &tracer, &mut enc))
        });
        g.finish();
    }

    // Consumer-pool scaling entry (DESIGN.md §4.11): aggregate
    // delivered pps of a pooled worker set over skewed traffic with a
    // blocking per-chunk I/O stage, against the one-consumer-per-queue
    // baseline at the same queue count. `scripts/check.sh` gates
    // `pool_speedup` at ≥ 1.5×.
    let (pool_queues, pool_workers) = (4usize, 4usize);
    let pool_packets: u64 = if quick() { 60_000 } else { 200_000 };
    eprintln!(
        "hotpath consumer_pool: {pool_queues} queues, {pool_workers} workers, \
         {pool_packets} packets per mode"
    );
    let base = scaling::baseline_point(pool_queues, pool_packets);
    let pooled = scaling::pooled_point(pool_queues, pool_workers, pool_packets);
    let consumer_pool = ConsumerPoolEntry {
        queues: pool_queues,
        workers: pool_workers,
        packets: pool_packets,
        single_pps: base.pps,
        pooled_pps: pooled.pps,
        pool_speedup: pooled.pps / base.pps,
        stolen_chunks: pooled.stolen_chunks,
    };
    eprintln!(
        "hotpath consumer_pool: single {:.0} p/s, pooled {:.0} p/s, speedup {:.2}x \
         ({} chunks stolen)",
        consumer_pool.single_pps,
        consumer_pool.pooled_pps,
        consumer_pool.pool_speedup,
        consumer_pool.stolen_chunks
    );

    // Backend-dispatch entry (DESIGN.md §4.13): the price of holding
    // the NIC behind `Arc<dyn BackendQueue>` on the capture hot path —
    // virtual poll + recycle per 256-packet batch against the
    // monomorphized pre-trait loop, identical arena-write sink work.
    // `scripts/check.sh` gates `backend_dispatch_overhead` at ≤ 2%.
    let dispatch_m = 16usize;
    let nic = LiveNic::new(1, DISPATCH_BATCH * 4);
    let backend = NicSimBackend::new(Arc::clone(&nic));
    let mono_q = backend.mono_queue(0);
    let dyn_q: Arc<dyn BackendQueue> = backend.queue(0);
    let (dispatch_arena, dispatch_free) = ChunkArena::with_slots(R, dispatch_m, FRAME);
    let (mono_pps, dyn_pps, dispatch_overhead, dispatch_overhead_raw) = {
        let free_cell = std::cell::RefCell::new(dispatch_free);
        measure_pair(
            || {
                dispatch_mono(
                    &pkts,
                    &backend,
                    &mono_q,
                    &dispatch_arena,
                    &mut free_cell.borrow_mut(),
                )
            },
            || {
                dispatch_dyn(
                    &pkts,
                    &backend,
                    &dyn_q,
                    &dispatch_arena,
                    &mut free_cell.borrow_mut(),
                )
            },
            n_packets,
            pair_rounds,
            PairOrder::Alternating,
        )
    };
    let backend_dispatch = BackendDispatchEntry {
        m: dispatch_m,
        batch: DISPATCH_BATCH,
        mono_pps,
        dyn_pps,
        backend_dispatch_overhead: dispatch_overhead,
        backend_dispatch_overhead_raw: dispatch_overhead_raw,
    };
    eprintln!(
        "hotpath backend_dispatch: mono {mono_pps:.0} p/s, dyn {dyn_pps:.0} p/s, \
         overhead {:.2}%",
        dispatch_overhead * 100.0
    );

    // Single-hot-queue entry (DESIGN.md §4.12): all load on one queue,
    // COREC-style concurrent claim-mode workers overlapping the
    // blocking per-chunk stage with no republish-through-the-owner
    // middleman. The gate compares claim-mode worker counts against
    // each other: `scripts/check.sh` gates `hotq_speedup` at ≥ 1.5×.
    let hotq_workers = 4usize;
    let hotq_packets: u64 = if quick() { 40_000 } else { 150_000 };
    eprintln!("hotpath single_hot_queue: 1 queue, 1 vs {hotq_workers} workers, {hotq_packets} packets per mode");
    let hotq_one = scaling::concurrent_point(1, 1, hotq_packets, false);
    let hotq_many = scaling::concurrent_point(1, hotq_workers, hotq_packets, false);
    let single_hot_queue = SingleHotQueueEntry {
        workers: hotq_workers,
        packets: hotq_packets,
        one_worker_pps: hotq_one.pps,
        many_worker_pps: hotq_many.pps,
        hotq_speedup: hotq_many.pps / hotq_one.pps,
        claim_contention: hotq_many.claim_contention,
    };
    eprintln!(
        "hotpath single_hot_queue: 1w {:.0} p/s, {}w {:.0} p/s, speedup {:.2}x \
         ({} claim races lost)",
        single_hot_queue.one_worker_pps,
        single_hot_queue.workers,
        single_hot_queue.many_worker_pps,
        single_hot_queue.hotq_speedup,
        single_hot_queue.claim_contention
    );

    // Latency-SLO entry (DESIGN.md §4.16): capture-to-delivery tail
    // latency of the two tuning modes at the same configured pool,
    // saturating load, one worker with a blocking per-chunk stage —
    // the headline `fig_latency` pair. A `Throughput`-tuned pool lets
    // the backlog grow R chunks deep (bufferbloat in chunk units);
    // `CacheResident` shrinks the pool to the LLC budget and bounds
    // the consumer's backlog at the derived recycle depth.
    // `scripts/check.sh` gates `slo_ok`: cache-resident p99.9 must
    // not exceed throughput p99.9.
    let slo_r = 256usize;
    let slo_llc: u64 = 4 << 20;
    let slo_packets: u64 = if quick() { 100_000 } else { 300_000 };
    eprintln!(
        "hotpath latency_slo: R={slo_r}, llc {} MiB, saturating load, \
         {slo_packets} packets per mode",
        slo_llc >> 20
    );
    let slo_thr = latency::latency_point(wirecap::TuningMode::Throughput, slo_r, 0, slo_packets);
    let slo_cache = latency::latency_point(
        wirecap::TuningMode::CacheResident { llc_bytes: slo_llc },
        slo_r,
        0,
        slo_packets,
    );
    let latency_slo = LatencySloEntry {
        pool_chunks: slo_r,
        llc_bytes: slo_llc,
        r_effective: slo_cache.r_effective,
        recycle_depth: slo_cache.recycle_depth,
        packets: slo_packets,
        throughput_p50_ns: slo_thr.p50_ns,
        throughput_p99_ns: slo_thr.p99_ns,
        throughput_p999_ns: slo_thr.p999_ns,
        cache_resident_p50_ns: slo_cache.p50_ns,
        cache_resident_p99_ns: slo_cache.p99_ns,
        cache_resident_p999_ns: slo_cache.p999_ns,
        tail_reduction: slo_thr.p999_ns as f64 / slo_cache.p999_ns.max(1) as f64,
        slo_ok: slo_cache.p999_ns <= slo_thr.p999_ns,
    };
    eprintln!(
        "hotpath latency_slo: throughput p99.9 {}us, cache_resident p99.9 {}us \
         ({:.1}x, R_eff {}, depth {})",
        latency_slo.throughput_p999_ns / 1_000,
        latency_slo.cache_resident_p999_ns / 1_000,
        latency_slo.tail_reduction,
        latency_slo.r_effective,
        latency_slo.recycle_depth
    );

    // Flow-tracking entry (DESIGN.md §4.15): the price of the per-chunk
    // flow-analytics stage — batched two-pass ingest into a pre-warmed
    // million-entry set-associative table plus top-K offers and the
    // telemetry delta flush — on top of the BPF-filtering consumer it
    // rides beside in `run_pooled_flows`. `scripts/check.sh` gates
    // `flow_tracking_overhead` at ≤ 10%.
    let flow_pkts = flow_traffic(n_packets);
    let flow_cfg = flowstat::FlowSinkConfig {
        table_capacity: FLOW_FLOWS,
        topk_capacity: 1024,
    };
    let mut flow_sink = flowstat::FlowSink::new(flow_cfg);
    // Pre-warm to steady state: the full million-flow universe is
    // resident before measurement, so every recorded packet pays the
    // realistic cost (a large-table lookup, possibly an eviction), not
    // the cold-start cost of an empty table.
    for i in 0..FLOW_FLOWS {
        flow_sink.record(
            flowstat::PackedFlowKey::from_flow(&flow_id_key(i)),
            FRAME as u64,
        );
    }
    let flow_tel = QueueCounters::new();
    eprintln!(
        "hotpath flow_tracking: {FLOW_FLOWS} flows, {FLOW_ELEPHANTS} elephants, \
         chunk {FLOW_CHUNK}, {n_packets} packets per mode"
    );
    let (filter_pps, flow_pps, flow_overhead, flow_overhead_raw) = {
        let mut handler_a = apps::PktHandler::paper(FLOW_FILTER_X);
        let mut handler_b = apps::PktHandler::paper(FLOW_FILTER_X);
        let sink_cell = std::cell::RefCell::new(flow_sink);
        measure_pair(
            || filter_only_path(&flow_pkts, &mut handler_a),
            || {
                flow_tracking_path(
                    &flow_pkts,
                    &mut handler_b,
                    &mut sink_cell.borrow_mut(),
                    &flow_tel,
                )
            },
            n_packets,
            pair_rounds,
            PairOrder::Fixed,
        )
    };
    let flow_snap = flow_tel.snapshot(0);
    let flow_tracking = FlowTrackingEntry {
        flows: FLOW_FLOWS,
        table_capacity: FLOW_FLOWS,
        elephants: FLOW_ELEPHANTS,
        chunk: FLOW_CHUNK,
        filter_x: FLOW_FILTER_X,
        packets: n_packets,
        filter_pps,
        flow_pps,
        flow_tracking_overhead: flow_overhead,
        flow_tracking_overhead_raw: flow_overhead_raw,
        live_flows: flow_snap.flow_table_occupancy,
        evicted_flows: flow_snap.flow_evicted_flows,
    };
    eprintln!(
        "hotpath flow_tracking: filter {filter_pps:.0} p/s, +flows {flow_pps:.0} p/s, \
         overhead {:.2}% ({} live flows, {} evicted)",
        flow_overhead * 100.0,
        flow_tracking.live_flows,
        flow_tracking.evicted_flows
    );

    write_json(
        &results,
        consumer_pool,
        single_hot_queue,
        backend_dispatch,
        flow_tracking,
        latency_slo,
        n_packets,
        rounds,
    );
}

struct HotpathResult {
    m: usize,
    seed_pps: f64,
    batched_pps: f64,
    speedup: f64,
    telemetry_pps: f64,
    telemetry_overhead: f64,
    telemetry_overhead_raw: f64,
    latency_stamping_pps: f64,
    latency_overhead: f64,
    latency_overhead_raw: f64,
    span_tracing_pps: f64,
    span_tracing_overhead: f64,
    span_tracing_overhead_raw: f64,
    disk_writer_pps: f64,
    disk_writer_overhead: f64,
    disk_writer_overhead_raw: f64,
}

#[derive(serde::Serialize)]
struct Entry {
    m: usize,
    seed_pps: f64,
    batched_pps: f64,
    speedup: f64,
    telemetry_pps: f64,
    telemetry_overhead: f64,
    telemetry_overhead_raw: f64,
    latency_stamping_pps: f64,
    latency_overhead: f64,
    latency_overhead_raw: f64,
    span_tracing_pps: f64,
    span_tracing_overhead: f64,
    span_tracing_overhead_raw: f64,
    disk_writer_pps: f64,
    disk_writer_overhead: f64,
    disk_writer_overhead_raw: f64,
}

/// Multi-core delivery scaling: pooled workers (with stealing and
/// adaptive parking) vs one consumer per queue, identical skewed
/// traffic and per-chunk work. Gated at `pool_speedup >= 1.5` by
/// `scripts/check.sh`.
#[derive(serde::Serialize)]
struct ConsumerPoolEntry {
    queues: usize,
    workers: usize,
    packets: u64,
    single_pps: f64,
    pooled_pps: f64,
    pool_speedup: f64,
    stolen_chunks: u64,
}

/// Single-hot-queue scaling: COREC-style concurrent claim-mode workers
/// draining one queue, N workers vs 1. Gated at `hotq_speedup >= 1.5`
/// by `scripts/check.sh`.
#[derive(serde::Serialize)]
struct SingleHotQueueEntry {
    workers: usize,
    packets: u64,
    one_worker_pps: f64,
    many_worker_pps: f64,
    hotq_speedup: f64,
    claim_contention: u64,
}

/// Static vs dynamic backend dispatch on the capture hot path: the
/// monomorphized `NicSimQueue::poll_batch_mono` loop against the same
/// loop through `Arc<dyn BackendQueue>` (virtual poll + recycle per
/// batch). Gated at `backend_dispatch_overhead <= 0.02` by
/// `scripts/check.sh`.
#[derive(serde::Serialize)]
struct BackendDispatchEntry {
    m: usize,
    batch: usize,
    mono_pps: f64,
    dyn_pps: f64,
    backend_dispatch_overhead: f64,
    backend_dispatch_overhead_raw: f64,
}

/// Online flow analytics on the delivery path: the BPF-filtering
/// consumer alone vs the same consumer plus the per-chunk `FlowSink`
/// stage over a pre-warmed million-entry table. Gated at
/// `flow_tracking_overhead <= 0.10` by `scripts/check.sh`.
#[derive(serde::Serialize)]
struct FlowTrackingEntry {
    flows: usize,
    table_capacity: usize,
    elephants: usize,
    chunk: usize,
    filter_x: u32,
    packets: usize,
    filter_pps: f64,
    flow_pps: f64,
    flow_tracking_overhead: f64,
    flow_tracking_overhead_raw: f64,
    live_flows: u64,
    evicted_flows: u64,
}

/// Capture-to-delivery tail latency SLO (DESIGN.md §4.16): the two
/// tuning modes at the same configured pool under saturating load.
/// Gated by `scripts/check.sh`: `slo_ok` must be true (cache-resident
/// p99.9 ≤ throughput p99.9).
#[derive(serde::Serialize)]
struct LatencySloEntry {
    pool_chunks: usize,
    llc_bytes: u64,
    r_effective: usize,
    recycle_depth: usize,
    packets: u64,
    throughput_p50_ns: u64,
    throughput_p99_ns: u64,
    throughput_p999_ns: u64,
    cache_resident_p50_ns: u64,
    cache_resident_p99_ns: u64,
    cache_resident_p999_ns: u64,
    tail_reduction: f64,
    slo_ok: bool,
}

#[derive(serde::Serialize)]
struct Doc {
    benchmark: String,
    frame_bytes: usize,
    pool_chunks: usize,
    packets_per_round: usize,
    rounds: usize,
    results: Vec<Entry>,
    consumer_pool: ConsumerPoolEntry,
    single_hot_queue: SingleHotQueueEntry,
    backend_dispatch: BackendDispatchEntry,
    flow_tracking: FlowTrackingEntry,
    latency_slo: LatencySloEntry,
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    results: &[HotpathResult],
    consumer_pool: ConsumerPoolEntry,
    single_hot_queue: SingleHotQueueEntry,
    backend_dispatch: BackendDispatchEntry,
    flow_tracking: FlowTrackingEntry,
    latency_slo: LatencySloEntry,
    n_packets: usize,
    rounds: usize,
) {
    let doc = Doc {
        benchmark: "live hot path, chunk-at-a-time vs batched arena".into(),
        frame_bytes: FRAME,
        pool_chunks: R,
        packets_per_round: n_packets,
        rounds,
        results: results
            .iter()
            .map(|r| Entry {
                m: r.m,
                seed_pps: r.seed_pps,
                batched_pps: r.batched_pps,
                speedup: r.speedup,
                telemetry_pps: r.telemetry_pps,
                telemetry_overhead: r.telemetry_overhead,
                telemetry_overhead_raw: r.telemetry_overhead_raw,
                latency_stamping_pps: r.latency_stamping_pps,
                latency_overhead: r.latency_overhead,
                latency_overhead_raw: r.latency_overhead_raw,
                span_tracing_pps: r.span_tracing_pps,
                span_tracing_overhead: r.span_tracing_overhead,
                span_tracing_overhead_raw: r.span_tracing_overhead_raw,
                disk_writer_pps: r.disk_writer_pps,
                disk_writer_overhead: r.disk_writer_overhead,
                disk_writer_overhead_raw: r.disk_writer_overhead_raw,
            })
            .collect(),
        consumer_pool,
        single_hot_queue,
        backend_dispatch,
        flow_tracking,
        latency_slo,
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_hotpath.json");
    let body = serde_json::to_string_pretty(&doc).expect("serializing results");
    std::fs::write(&path, body + "\n").expect("writing BENCH_hotpath.json");
    eprintln!("wrote {}", path.display());
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
