//! The experiment implementations behind each figure binary.
//!
//! Figure binaries (`src/bin/fig*.rs`) are thin wrappers over these
//! functions so that `fig_all` and the integration tests can run the same
//! code paths.

use crate::fig14_model::{self, Fig14Engine, OperatingPoint};
use apps::harness::{run, EngineKind, ExperimentResult};
use apps::QueueProfiler;
use engines::EngineConfig;
use serde::Serialize;
use traffic::{generate_border_trace, BorderTraceConfig, Trace, TraceCursor, WireRateGen};
use wirecap::WireCapConfig;

/// Fig. 3 output: per-queue 10 ms-binned load series.
#[derive(Debug, Serialize)]
pub struct Fig3Result {
    /// Number of queues profiled.
    pub queues: usize,
    /// Total packets per queue.
    pub totals: Vec<u64>,
    /// Busiest queue index (the paper's "queue 0").
    pub hot: usize,
    /// Quietest queue index (the paper's "queue 3").
    pub cold: usize,
    /// 10 ms-binned counts of the hot queue.
    pub hot_series: Vec<u64>,
    /// 10 ms-binned counts of the cold queue.
    pub cold_series: Vec<u64>,
    /// Busiest-over-quietest total ratio.
    pub imbalance_ratio: f64,
    /// Peak-over-mean of the hot queue (short-term burstiness).
    pub hot_burstiness: f64,
}

/// Fig. 3: replay the border trace across six RSS-steered queues and
/// profile per-queue load in 10 ms bins.
pub fn fig3(trace: &Trace, queues: usize) -> Fig3Result {
    let mut cursor = TraceCursor::new(trace);
    let prof = QueueProfiler::profile(&mut cursor, queues);
    let (hot, cold) = prof.extremes();
    Fig3Result {
        queues,
        totals: prof.totals(),
        hot,
        cold,
        hot_series: prof.queue(hot).counts().to_vec(),
        cold_series: prof.queue(cold).counts().to_vec(),
        imbalance_ratio: prof.imbalance_ratio(),
        hot_burstiness: prof.queue(hot).burstiness(),
    }
}

/// One engine's Table 1 row.
#[derive(Debug, Serialize)]
pub struct Tab1Row {
    /// Engine name.
    pub engine: String,
    /// Capture-drop rate at the hot queue.
    pub hot_capture: f64,
    /// Delivery-drop rate at the hot queue.
    pub hot_delivery: f64,
    /// Capture-drop rate at the cold queue.
    pub cold_capture: f64,
    /// Delivery-drop rate at the cold queue.
    pub cold_delivery: f64,
    /// Full per-queue accounting.
    pub result: ExperimentResult,
}

/// Table 1: drop rates under load imbalance for the Type-II engines and
/// PF_RING, x = 300, six queues.
pub fn tab1(trace: &Trace, queues: usize) -> Vec<Tab1Row> {
    let profile = fig3(trace, queues);
    let cfg = EngineConfig::paper(300);
    [EngineKind::Netmap, EngineKind::Dna, EngineKind::PfRing]
        .iter()
        .map(|&kind| {
            let mut cursor = TraceCursor::new(trace);
            let result = run(kind, queues, cfg, &mut cursor);
            Tab1Row {
                engine: result.engine.clone(),
                hot_capture: result.per_queue[profile.hot].capture_drop_rate(),
                hot_delivery: result.per_queue[profile.hot].delivery_drop_rate(),
                cold_capture: result.per_queue[profile.cold].capture_drop_rate(),
                cold_delivery: result.per_queue[profile.cold].delivery_drop_rate(),
                result,
            }
        })
        .collect()
}

/// One point of a Fig. 8/9/10 burst sweep.
#[derive(Debug, Serialize)]
pub struct SweepPoint {
    /// Engine name.
    pub engine: String,
    /// Burst size P in packets.
    pub p: u64,
    /// Overall drop rate.
    pub drop_rate: f64,
}

/// The P values swept in Figs. 8–10 (log-spaced 10³…10⁷ as in the paper).
pub fn sweep_points(max_p: u64) -> Vec<u64> {
    let mut ps = Vec::new();
    let mut base = 1_000u64;
    while base <= max_p {
        for m in [1, 2, 5] {
            let p = base * m;
            if p <= max_p {
                ps.push(p);
            }
        }
        base *= 10;
    }
    ps
}

/// Figs. 8–10: P 64-byte packets at wire rate into one queue; sweep P
/// and engines.
pub fn burst_sweep(engines: &[EngineKind], x: u32, max_p: u64) -> Vec<SweepPoint> {
    let cfg = EngineConfig::paper(x);
    let mut out = Vec::new();
    for &kind in engines {
        for &p in &sweep_points(max_p) {
            let mut gen = WireRateGen::paper_burst(p);
            let result = run(kind, 1, cfg, &mut gen);
            out.push(SweepPoint {
                engine: result.engine.clone(),
                p,
                drop_rate: result.drop_rate(),
            });
        }
    }
    out
}

/// One point of a trace-driven multi-queue experiment (Figs. 11–13).
#[derive(Debug, Serialize)]
pub struct TracePoint {
    /// Engine name.
    pub engine: String,
    /// Number of receive queues.
    pub queues: usize,
    /// Overall drop rate.
    pub drop_rate: f64,
    /// Full accounting.
    pub result: ExperimentResult,
}

/// Figs. 11–13: replay the border trace across n ∈ `queue_counts`
/// RSS-steered queues for each engine; x = 300.
pub fn trace_experiment(
    trace: &Trace,
    engines: &[EngineKind],
    queue_counts: &[usize],
    forward: bool,
) -> Vec<TracePoint> {
    let cfg = if forward {
        EngineConfig::paper_forwarding(300)
    } else {
        EngineConfig::paper(300)
    };
    let mut out = Vec::new();
    for &kind in engines {
        for &queues in queue_counts {
            let mut cursor = TraceCursor::new(trace);
            let result = run(kind, queues, cfg, &mut cursor);
            out.push(TracePoint {
                engine: result.engine.clone(),
                queues,
                drop_rate: result.drop_rate(),
                result,
            });
        }
    }
    out
}

/// The engine list of Fig. 11.
pub fn fig11_engines() -> Vec<EngineKind> {
    vec![
        EngineKind::PfRing,
        EngineKind::Dna,
        EngineKind::Netmap,
        EngineKind::WireCap(WireCapConfig::basic(256, 100, 300)),
        EngineKind::WireCap(WireCapConfig::basic(256, 500, 300)),
        EngineKind::WireCap(WireCapConfig::advanced(256, 100, 0.6, 300)),
        EngineKind::WireCap(WireCapConfig::advanced(256, 500, 0.6, 300)),
    ]
}

/// The engine list of Fig. 12 (threshold sweep).
pub fn fig12_engines() -> Vec<EngineKind> {
    [0.6, 0.7, 0.8, 0.9]
        .iter()
        .map(|&t| EngineKind::WireCap(WireCapConfig::advanced(256, 100, t, 300)))
        .collect()
}

/// The engine list of Fig. 13 (forwarding; NETMAP excluded as in the
/// paper — its per-queue sync cannot drive the forwarding path).
pub fn fig13_engines() -> Vec<EngineKind> {
    vec![
        EngineKind::PfRing,
        EngineKind::Dna,
        EngineKind::WireCap(WireCapConfig::basic(256, 100, 300)),
        EngineKind::WireCap(WireCapConfig::basic(256, 500, 300)),
        EngineKind::WireCap(WireCapConfig::advanced(256, 100, 0.6, 300)),
        EngineKind::WireCap(WireCapConfig::advanced(256, 500, 0.6, 300)),
    ]
}

/// One Fig. 14 model point.
#[derive(Debug, Serialize)]
pub struct Fig14Point {
    /// Engine name.
    pub engine: String,
    /// Frame length (bytes, FCS included).
    pub frame_len: u16,
    /// Queues per NIC.
    pub queues_per_nic: usize,
    /// Predicted overall drop rate.
    pub drop_rate: f64,
}

/// Fig. 14: the two-NIC scalability sweep.
pub fn fig14() -> Vec<Fig14Point> {
    let engines = [
        Fig14Engine::Dna,
        Fig14Engine::WireCapA(WireCapConfig::advanced(256, 100, 0.6, 0)),
        Fig14Engine::WireCapA(WireCapConfig::advanced(256, 500, 0.6, 0)),
    ];
    let mut out = Vec::new();
    for &engine in &engines {
        for &frame_len in &[64u16, 100] {
            for queues_per_nic in 1..=6 {
                out.push(Fig14Point {
                    engine: engine.name(),
                    frame_len,
                    queues_per_nic,
                    drop_rate: fig14_model::drop_rate(
                        engine,
                        OperatingPoint {
                            frame_len,
                            queues_per_nic,
                        },
                    ),
                });
            }
        }
    }
    out
}

/// Builds (or rebuilds) the border trace for a scale.
pub fn border_trace(cfg: &BorderTraceConfig) -> Trace {
    generate_border_trace(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_are_log_spaced() {
        let ps = sweep_points(10_000_000);
        assert_eq!(ps.first(), Some(&1_000));
        assert_eq!(ps.last(), Some(&10_000_000));
        assert_eq!(ps.len(), 13);
        assert!(ps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn fig14_covers_the_grid() {
        let pts = fig14();
        assert_eq!(pts.len(), 3 * 2 * 6);
        // 100-byte points are all lossless.
        assert!(pts
            .iter()
            .filter(|p| p.frame_len == 100)
            .all(|p| p.drop_rate < 1e-9));
    }
}
