//! Capture-to-delivery tail latency under pool tuning modes
//! (`fig_latency`, DESIGN.md §4.16).
//!
//! The experiment behind the cache-resident fast path: a large ring
//! buffer pool is great for loss tolerance but terrible for tail
//! latency — when the consumer lags, up to R chunks queue behind it,
//! and every queued chunk adds a full service time to the chunks
//! sealed after it (classic bufferbloat, in chunk units). The
//! `CacheResident` tuning mode shrinks the pool to an LLC budget and
//! bounds the consumer's backlog at the derived recycle depth, so the
//! worst-case queueing delay is structural, not R-sized.
//!
//! Each data point runs the live engine over the nicsim backend at a
//! fixed offered load (or saturating when `offered_pps == 0`), drains
//! it through a one-worker [`wirecap::ConsumerPool`] with a blocking
//! per-chunk stage (the deterministic service time), and reports the
//! p50/p99/p99.9 of the engine's own capture-to-delivery latency
//! histogram — the same `latency_ns` instrument the telemetry
//! pipeline scrapes, quantiles interpolated sub-bucket. Conservation
//! is asserted before any number is reported.

use crate::scaling::{assert_conserved, FRAME};
use netproto::{FlowKey, Packet, PacketBuilder};
use nicsim::livenic::LiveNic;
use serde::Serialize;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Instant;
use telemetry::HistogramSnapshot;
use wirecap::buddy::BuddyGroups;
use wirecap::config::TuningMode;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::WireCapConfig;

/// Cells per chunk in every latency run (chunk service time and the
/// pool working set both scale with it; one value keeps points
/// comparable).
pub const M: usize = 64;

/// Blocking per-chunk stage in the consumer, microseconds: the
/// deterministic service time that turns backlog depth into latency.
pub const CHUNK_IO_US: u64 = 20;

/// One measured configuration of the latency sweep.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyPoint {
    /// `"throughput"` or `"cache_resident"`.
    pub mode: &'static str,
    /// LLC budget handed to `CacheResident` (0 for `Throughput`).
    pub llc_bytes: u64,
    /// Configured pool chunks R (before the tuning derivation).
    pub pool_chunks: usize,
    /// Effective pool chunks after the derivation.
    pub r_effective: usize,
    /// Fast-recycle depth bound (0 = unbounded lazy recycle).
    pub recycle_depth: usize,
    /// Derived per-queue hot working set, bytes.
    pub working_set_bytes: u64,
    /// Paced injection rate, packets/s (0 = saturating).
    pub offered_pps: u64,
    /// Packets offered (and, conservation-checked, accounted).
    pub packets: u64,
    /// Wall-clock seconds from first injection to delivery completion.
    pub elapsed_s: f64,
    /// Aggregate delivered packets per second.
    pub pps: f64,
    /// Latency samples (delivered chunks) behind the quantiles.
    pub samples: u64,
    /// Capture-to-delivery latency median, ns (sub-bucket interpolated
    /// from the engine's own `latency_ns` histogram).
    pub p50_ns: u64,
    /// Capture-to-delivery latency 99th percentile, ns.
    pub p99_ns: u64,
    /// Capture-to-delivery latency 99.9th percentile, ns — the SLO
    /// number `scripts/check.sh` gates across tuning modes.
    pub p999_ns: u64,
    /// Largest latency sample observed, ns.
    pub max_ns: u64,
}

/// Single-flow traffic: everything lands on queue 0, so one consumer's
/// backlog is the whole story.
fn traffic(n: u64) -> Vec<Packet> {
    let mut b = PacketBuilder::new();
    let flow = FlowKey::udp(
        Ipv4Addr::new(10, 7, 7, 7),
        7_777,
        Ipv4Addr::new(131, 225, 2, 1),
        443,
    );
    (0..n)
        .map(|i| b.build_packet(i * 1_000, &flow, FRAME).unwrap())
        .collect()
}

/// Runs one latency point: `r` configured pool chunks under `tuning`,
/// injection paced at `offered_pps` (0 = as fast as the NIC accepts),
/// one queue, one pool worker with the blocking per-chunk stage.
pub fn latency_point(tuning: TuningMode, r: usize, offered_pps: u64, packets: u64) -> LatencyPoint {
    let mut cfg = WireCapConfig::basic(M, r, 0);
    cfg.capture_timeout_ns = 2_000_000;
    cfg.tuning = tuning;
    let plan = cfg.tuning_plan(1);

    let traffic = traffic(packets);
    let nic = LiveNic::new(1, 4096);
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(BuddyGroups::single(1))
        .start();
    let group = wirecap::BuddyGroup::all(1);
    let start = Instant::now();
    let pool = engine.consumer_pool(&group, 1, move |d| {
        // Touch every payload byte (the cache-facing read), then the
        // deterministic blocking stage.
        let mut acc = 0u64;
        for p in d.view().iter() {
            for b in p.data {
                acc = acc.rotate_left(7).wrapping_add(u64::from(*b));
            }
        }
        std::hint::black_box(acc);
        std::thread::sleep(std::time::Duration::from_micros(CHUNK_IO_US));
    });
    // Paced injection: bursts of PACE_BURST packets scheduled against
    // the wall clock, so the offered rate holds without a per-packet
    // clock spin. Saturating mode just pushes as fast as the ring
    // accepts (backpressure spins).
    const PACE_BURST: u64 = 64;
    let gap_ns_per_burst = if offered_pps > 0 {
        PACE_BURST as f64 * 1e9 / offered_pps as f64
    } else {
        0.0
    };
    for (i, pkt) in traffic.iter().enumerate() {
        if gap_ns_per_burst > 0.0 && (i as u64).is_multiple_of(PACE_BURST) {
            let due = start
                + std::time::Duration::from_nanos(
                    ((i as u64 / PACE_BURST) as f64 * gap_ns_per_burst) as u64,
                );
            while Instant::now() < due {
                // Yield, don't spin: on small machines the pacer
                // shares a core with the capture and worker threads,
                // and a spin-wait here starves the very pipeline
                // being measured.
                std::thread::yield_now();
            }
        }
        while nic.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
    }
    nic.stop();
    let reports = pool.join();
    let elapsed = start.elapsed().as_secs_f64();
    let observer = engine.observer();
    engine.shutdown();
    let snap = observer.snapshot();
    assert_conserved(&snap, packets);
    let delivered: u64 = reports.iter().map(|rep| rep.packets).sum();
    assert_eq!(delivered, packets, "latency point delivered every packet");

    // Engine-wide latency distribution: per-queue histograms merged,
    // quantiles interpolated (exactly what `SeriesSample` gauges).
    let mut latency = HistogramSnapshot::default();
    for q in &snap.queues {
        latency.merge(&q.latency_ns);
    }
    let (mode, llc_bytes) = match tuning {
        TuningMode::Throughput => ("throughput", 0),
        TuningMode::CacheResident { llc_bytes } => ("cache_resident", llc_bytes),
    };
    LatencyPoint {
        mode,
        llc_bytes,
        pool_chunks: r,
        r_effective: plan.r,
        recycle_depth: plan.recycle_depth,
        working_set_bytes: plan.working_set_bytes,
        offered_pps,
        packets,
        elapsed_s: elapsed,
        pps: delivered as f64 / elapsed,
        samples: latency.count,
        p50_ns: latency.quantile(0.5),
        p99_ns: latency.quantile(0.99),
        p999_ns: latency.quantile(0.999),
        max_ns: latency.max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_conserve_and_report_quantiles() {
        let t = latency_point(TuningMode::Throughput, 64, 0, 30_000);
        assert_eq!(t.packets, 30_000);
        assert!(t.samples > 0);
        assert!(t.p50_ns <= t.p99_ns && t.p99_ns <= t.p999_ns);
        assert!(t.p999_ns <= t.max_ns);
        assert_eq!(t.recycle_depth, 0);

        let c = latency_point(
            TuningMode::CacheResident { llc_bytes: 4 << 20 },
            64,
            0,
            30_000,
        );
        assert_eq!(c.mode, "cache_resident");
        assert!(c.r_effective <= 64);
        assert!(c.recycle_depth >= 1);
        assert!(c.p50_ns <= c.p99_ns && c.p99_ns <= c.p999_ns);
    }

    #[test]
    fn paced_injection_holds_the_offered_rate() {
        // 500 kp/s for 25k packets ≈ 50 ms floor; saturating would
        // finish much faster. The ceiling check is loose (scheduling),
        // the floor is the point.
        let p = latency_point(TuningMode::Throughput, 64, 500_000, 25_000);
        assert!(
            p.elapsed_s >= 0.045,
            "paced run finished implausibly fast: {}s",
            p.elapsed_s
        );
    }
}
