//! Reproduces Fig. 3: per-queue load time series under RSS steering.

use bench::{experiments, sparkline, write_json, write_table, Opts};

fn main() {
    let opts = Opts::parse();
    let trace = experiments::border_trace(&opts.trace_config());
    let result = experiments::fig3(&trace, 6);

    let rows: Vec<Vec<String>> = (0..result.queues)
        .map(|q| {
            let marker = if q == result.hot {
                " (hot)"
            } else if q == result.cold {
                " (cold)"
            } else {
                ""
            };
            vec![
                format!("queue {q}{marker}"),
                result.totals[q].to_string(),
                format!(
                    "{:.1}",
                    result.totals[q] as f64 / trace.duration_ns() as f64 * 1e9
                ),
            ]
        })
        .collect();
    write_table(
        &opts.out,
        "fig3",
        "Figure 3 — load imbalance: per-queue totals over the border trace",
        &["queue", "packets", "mean p/s"],
        &rows,
    );
    println!(
        "hot  queue {} [10ms bins]: {}",
        result.hot,
        sparkline(&result.hot_series, 64)
    );
    println!(
        "cold queue {} [10ms bins]: {}",
        result.cold,
        sparkline(&result.cold_series, 64)
    );
    println!(
        "long-term imbalance ratio {:.2}, hot-queue burstiness {:.1}",
        result.imbalance_ratio, result.hot_burstiness
    );
    write_json(&opts.out, "fig3", &result);
}
