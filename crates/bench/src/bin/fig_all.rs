//! Runs every figure/table reproduction and writes `results/`.

use apps::harness::EngineKind;
use bench::{experiments, write_json, Opts};
use wirecap::WireCapConfig;

fn main() {
    let opts = Opts::parse();
    let t0 = std::time::Instant::now();
    let trace = experiments::border_trace(&opts.trace_config());
    eprintln!(
        "[{:6.1?}] border trace ready: {} packets / {} flows / {:.1}s",
        t0.elapsed(),
        trace.len(),
        trace.flow_count(),
        trace.duration_ns() as f64 / 1e9
    );

    write_json(&opts.out, "fig3", &experiments::fig3(&trace, 6));
    eprintln!("[{:6.1?}] fig3 done", t0.elapsed());

    write_json(&opts.out, "tab1", &experiments::tab1(&trace, 6));
    eprintln!("[{:6.1?}] tab1 done", t0.elapsed());

    let fig8_engines = vec![
        EngineKind::Dna,
        EngineKind::PfRing,
        EngineKind::Netmap,
        EngineKind::WireCap(WireCapConfig::basic(64, 100, 0)),
        EngineKind::WireCap(WireCapConfig::basic(128, 100, 0)),
        EngineKind::WireCap(WireCapConfig::basic(256, 100, 0)),
        EngineKind::WireCap(WireCapConfig::basic(256, 500, 0)),
    ];
    let max_p = opts.scale(10_000_000);
    write_json(
        &opts.out,
        "fig8",
        &experiments::burst_sweep(&fig8_engines, 0, max_p),
    );
    eprintln!("[{:6.1?}] fig8 done", t0.elapsed());

    let fig9_engines = vec![
        EngineKind::Dna,
        EngineKind::PfRing,
        EngineKind::Netmap,
        EngineKind::WireCap(WireCapConfig::basic(256, 100, 300)),
        EngineKind::WireCap(WireCapConfig::basic(256, 500, 300)),
    ];
    write_json(
        &opts.out,
        "fig9",
        &experiments::burst_sweep(&fig9_engines, 300, max_p),
    );
    eprintln!("[{:6.1?}] fig9 done", t0.elapsed());

    let fig10_engines = vec![
        EngineKind::WireCap(WireCapConfig::basic(64, 400, 300)),
        EngineKind::WireCap(WireCapConfig::basic(128, 200, 300)),
        EngineKind::WireCap(WireCapConfig::basic(256, 100, 300)),
    ];
    write_json(
        &opts.out,
        "fig10",
        &experiments::burst_sweep(&fig10_engines, 300, max_p),
    );
    eprintln!("[{:6.1?}] fig10 done", t0.elapsed());

    write_json(
        &opts.out,
        "fig11",
        &experiments::trace_experiment(&trace, &experiments::fig11_engines(), &[4, 5, 6], false),
    );
    eprintln!("[{:6.1?}] fig11 done", t0.elapsed());

    write_json(
        &opts.out,
        "fig12",
        &experiments::trace_experiment(&trace, &experiments::fig12_engines(), &[4, 5, 6], false),
    );
    eprintln!("[{:6.1?}] fig12 done", t0.elapsed());

    write_json(
        &opts.out,
        "fig13",
        &experiments::trace_experiment(&trace, &experiments::fig13_engines(), &[4, 5, 6], true),
    );
    eprintln!("[{:6.1?}] fig13 done", t0.elapsed());

    write_json(&opts.out, "fig14", &experiments::fig14());
    write_json(&opts.out, "tab2", &engines::capabilities::table2());
    eprintln!(
        "[{:6.1?}] all experiments written to {}",
        t0.elapsed(),
        opts.out.display()
    );
}
