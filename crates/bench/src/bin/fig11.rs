//! Reproduces Fig. 11: advanced mode vs. every baseline on the trace.

use bench::{experiments, pct, write_json, write_table, Opts};

fn main() {
    let opts = Opts::parse();
    let trace = experiments::border_trace(&opts.trace_config());
    let points =
        experiments::trace_experiment(&trace, &experiments::fig11_engines(), &[4, 5, 6], false);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.engine.clone(),
                format!("{} queues", p.queues),
                pct(p.drop_rate),
            ]
        })
        .collect();
    write_table(
        &opts.out,
        "fig11",
        "Figure 11 — advanced-mode capture on the border trace (x = 300)",
        &["engine", "queues", "drop rate"],
        &rows,
    );
    write_json(&opts.out, "fig11", &points);
}
