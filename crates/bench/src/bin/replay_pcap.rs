//! Replay a pcap capture of your own through any capture engine.
//!
//! ```sh
//! cargo run -p bench --release --bin replay_pcap -- capture.pcap \
//!     [--engine dna|netmap|pf_ring|pf_packet|psioe|dpdk|wirecap-b|wirecap-a] \
//!     [--queues N] [--x N] [--speed F]
//! ```
//!
//! The capture is imported as a trace (flows interned from the 5-tuples),
//! steered across `--queues` receive queues with the real Toeplitz hash,
//! and replayed "at the speed exactly as recorded" (scaled by `--speed`)
//! into the chosen engine. Prints the paper's metrics: per-queue offered
//! load, capture/delivery drops, copies, and delivery latency.

use apps::harness::{run, EngineKind};
use engines::{AppModel, EngineConfig};
use sim::CpuModel;
use traffic::TraceCursor;
use wirecap::WireCapConfig;

fn main() {
    let mut file: Option<String> = None;
    let mut engine = "wirecap-a".to_string();
    let mut queues = 6usize;
    let mut x = 300u32;
    let mut speed = 1.0f64;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--engine" => engine = args.next().expect("--engine needs a value"),
            "--queues" => {
                queues = args
                    .next()
                    .expect("--queues needs a value")
                    .parse()
                    .unwrap()
            }
            "--x" => x = args.next().expect("--x needs a value").parse().unwrap(),
            "--speed" => speed = args.next().expect("--speed needs a value").parse().unwrap(),
            "--help" | "-h" => {
                eprintln!("usage: replay_pcap FILE [--engine E] [--queues N] [--x N] [--speed F]");
                std::process::exit(0);
            }
            other => file = Some(other.to_string()),
        }
    }
    let Some(file) = file else {
        eprintln!("usage: replay_pcap FILE [--engine E] [--queues N] [--x N] [--speed F]");
        std::process::exit(2);
    };

    let kind = match engine.as_str() {
        "dna" => EngineKind::Dna,
        "netmap" => EngineKind::Netmap,
        "pf_ring" => EngineKind::PfRing,
        "pf_packet" => EngineKind::PfPacket,
        "psioe" => EngineKind::Psioe,
        "dpdk" => EngineKind::Dpdk,
        "dpdk-offload" => EngineKind::DpdkAppOffload(0.6),
        "wirecap-b" => EngineKind::WireCap(WireCapConfig::basic(256, 100, x)),
        "wirecap-a" => EngineKind::WireCap(WireCapConfig::advanced(256, 100, 0.6, x)),
        other => {
            eprintln!("unknown engine {other:?}");
            std::process::exit(2);
        }
    };

    let data = std::fs::read(&file).unwrap_or_else(|e| {
        eprintln!("cannot read {file}: {e}");
        std::process::exit(1);
    });
    let (trace, report) = traffic::import_savefile(&data).unwrap_or_else(|e| {
        eprintln!("cannot parse {file}: {e}");
        std::process::exit(1);
    });
    println!(
        "{file}: {} packets imported, {} skipped, {} flows, {:.2}s span, mean {:.0} p/s",
        report.imported,
        report.skipped,
        trace.flow_count(),
        trace.duration_ns() as f64 / 1e9,
        trace.mean_rate_pps()
    );

    let cfg = EngineConfig {
        app: AppModel {
            cpu: CpuModel::default(),
            x,
            forward: false,
        },
        ring_size: 1024,
    };
    let mut cursor = TraceCursor::new(&trace).with_speed(speed);
    let res = run(kind, queues, cfg, &mut cursor);

    println!(
        "\n{} on {queues} queues (x = {x}, {speed}x replay):",
        res.engine
    );
    for (q, s) in res.per_queue.iter().enumerate() {
        println!(
            "  queue {q}: offered {:>9}  capture drops {:>8} ({})  delivery drops {:>8} ({})",
            s.offered,
            s.capture_drops,
            bench::pct(s.capture_drop_rate()),
            s.delivery_drops,
            bench::pct(s.delivery_drop_rate()),
        );
    }
    println!(
        "  total: {} offered, {} delivered, overall drop rate {}",
        res.total.offered,
        res.total.delivered,
        bench::pct(res.drop_rate())
    );
    if !res.copies.is_zero_copy() {
        println!(
            "  copies: {} packets / {} bytes",
            res.copies.packets, res.copies.bytes
        );
    }
    if res.latency.count() > 0 {
        println!(
            "  delivery latency: mean {:.1} µs, p99 {:.1} µs",
            res.latency.mean_ns() / 1e3,
            res.latency.quantile_ns(0.99) as f64 / 1e3
        );
    }
}
