//! Reproduces Fig. 14: two-NIC scalability under bus saturation.

use bench::{experiments, pct, write_json, write_table, Opts};

fn main() {
    let opts = Opts::parse();
    let points = experiments::fig14();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}@{}B", p.engine, p.frame_len),
                p.queues_per_nic.to_string(),
                pct(p.drop_rate),
            ]
        })
        .collect();
    write_table(
        &opts.out,
        "fig14",
        "Figure 14 — scalability: 2 NICs, RX + forward at wire rate (x = 0)",
        &["engine@frame", "queues/NIC", "drop rate"],
        &rows,
    );
    write_json(&opts.out, "fig14", &points);
}
