//! `fig_scaling` — multi-core delivery scaling: consumer pools vs. the
//! one-consumer-per-queue baseline (DESIGN.md §4.11, EXPERIMENTS.md).
//!
//! Sweeps worker counts × queue counts over the skewed single-flow
//! workload of [`bench::scaling`] and reports aggregate delivered pps.
//! The per-queue baseline pins delivery to exactly one thread per
//! queue (idle ones busy-yield); the pooled rows run a
//! [`wirecap::ConsumerPool`] with chunk stealing and adaptive parking
//! over the same queues. Conservation is asserted inside every data
//! point before its rate is reported.
//!
//! A second sweep targets the pool's residual weak spot: *all* load on
//! one queue. Work stealing still funnels every sealed chunk through
//! the hot queue's owning worker before a thief can take it; the
//! COREC-style concurrent claim mode (DESIGN.md §4.12) lets every
//! worker claim chunks straight off the same queue. That sweep (1
//! queue, workers ∈ {1, 2, 4}, plus an in-order variant) is written
//! separately as `fig_scaling_hotq.{json,txt}`.
//!
//! `--small` runs the single 2-queue/2-worker point plus its baseline
//! and a reduced hot-queue sweep (the CI smoke configuration
//! `scripts/check.sh` uses).

use bench::scaling::{
    baseline_point, concurrent_point, pooled_point, ScalingPoint, FRAME, WORK_PASSES,
};
use bench::{write_json, write_table, Opts};
use serde::Serialize;

#[derive(Serialize)]
struct HotqDoc {
    benchmark: String,
    frame_bytes: usize,
    work_passes: usize,
    packets_per_point: u64,
    points: Vec<ScalingPoint>,
    /// Concurrent 1q/maxw pps over concurrent 1q/1w pps — whether N
    /// claim-mode workers actually multiply a single hot queue's
    /// delivery rate (`scripts/check.sh` gates the criterion variant
    /// of this number at ≥ 1.5×).
    hotq_speedup: f64,
    speedup_workers: usize,
}

#[derive(Serialize)]
struct Doc {
    benchmark: String,
    frame_bytes: usize,
    work_passes: usize,
    packets_per_point: u64,
    points: Vec<ScalingPoint>,
    /// Pooled pps at the largest queues/workers point divided by the
    /// same-queue-count per-queue baseline — the headline number
    /// (`scripts/check.sh` gates the 4q/4w variant at ≥ 1.5×).
    pool_speedup: f64,
    speedup_queues: usize,
    speedup_workers: usize,
}

fn main() {
    let opts = Opts::parse();
    let packets: u64 = if opts.small { 60_000 } else { 400_000 };
    let (queue_counts, worker_counts): (Vec<usize>, Vec<usize>) = if opts.small {
        (vec![2], vec![2])
    } else {
        (vec![1, 2, 4], vec![1, 2, 4])
    };

    let mut points: Vec<ScalingPoint> = Vec::new();
    for &q in &queue_counts {
        eprintln!("fig_scaling: per-queue baseline, {q} queue(s), {packets} packets");
        points.push(baseline_point(q, packets));
        for &w in &worker_counts {
            eprintln!("fig_scaling: pooled, {q} queue(s) x {w} worker(s), {packets} packets");
            points.push(pooled_point(q, w, packets));
        }
    }

    let gate_q = *queue_counts.last().expect("non-empty sweep");
    let gate_w = *worker_counts.last().expect("non-empty sweep");
    let baseline_pps = points
        .iter()
        .find(|p| p.mode == "per_queue" && p.queues == gate_q)
        .expect("baseline point present")
        .pps;
    let pooled_pps = points
        .iter()
        .find(|p| p.mode == "pooled" && p.queues == gate_q && p.workers == gate_w)
        .expect("pooled point present")
        .pps;
    let pool_speedup = pooled_pps / baseline_pps;

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.mode.to_string(),
                p.queues.to_string(),
                p.workers.to_string(),
                format!("{:.0}", p.pps),
                format!("{:.3}", p.elapsed_s),
                p.stolen_chunks.to_string(),
                p.worker_parks.to_string(),
            ]
        })
        .collect();
    write_table(
        &opts.out,
        "fig_scaling",
        &format!(
            "Aggregate delivered pps, skewed single-flow traffic \
             ({packets} packets, {FRAME}B frames, work x{WORK_PASSES}); \
             pooled {gate_q}q/{gate_w}w vs per-queue baseline: {pool_speedup:.2}x"
        ),
        &[
            "mode", "queues", "workers", "pps", "seconds", "stolen", "parks",
        ],
        &rows,
    );
    write_json(
        &opts.out,
        "fig_scaling",
        &Doc {
            benchmark: "multi-core delivery scaling: consumer pool vs per-queue consumers".into(),
            frame_bytes: FRAME,
            work_passes: WORK_PASSES,
            packets_per_point: packets,
            points,
            pool_speedup,
            speedup_queues: gate_q,
            speedup_workers: gate_w,
        },
    );

    // Single-hot-queue sweep: 1 queue, claim-mode workers overlapping
    // the blocking per-chunk stage, plus the in-order variant at the
    // top worker count to show the reorder buffer's cost.
    let hotq_packets: u64 = if opts.small { 40_000 } else { 200_000 };
    let hotq_workers: Vec<usize> = vec![1, 2, 4];
    let mut hotq: Vec<ScalingPoint> = Vec::new();
    for &w in &hotq_workers {
        eprintln!(
            "fig_scaling: concurrent hot queue, 1 queue x {w} worker(s), {hotq_packets} packets"
        );
        hotq.push(concurrent_point(1, w, hotq_packets, false));
    }
    let max_w = *hotq_workers.last().expect("non-empty hotq sweep");
    eprintln!("fig_scaling: concurrent hot queue (in-order), 1 queue x {max_w} worker(s)");
    hotq.push(concurrent_point(1, max_w, hotq_packets, true));

    let one_w_pps = hotq[0].pps;
    let max_w_pps = hotq[hotq_workers.len() - 1].pps;
    let hotq_speedup = max_w_pps / one_w_pps;

    let hotq_rows: Vec<Vec<String>> = hotq
        .iter()
        .map(|p| {
            vec![
                p.mode.to_string(),
                p.workers.to_string(),
                format!("{:.0}", p.pps),
                format!("{:.3}", p.elapsed_s),
                p.claim_contention.to_string(),
                p.worker_parks.to_string(),
            ]
        })
        .collect();
    write_table(
        &opts.out,
        "fig_scaling_hotq",
        &format!(
            "Single hot queue, concurrent claim mode \
             ({hotq_packets} packets, {FRAME}B frames, work x{WORK_PASSES}); \
             1q/{max_w}w vs 1q/1w: {hotq_speedup:.2}x"
        ),
        &["mode", "workers", "pps", "seconds", "contention", "parks"],
        &hotq_rows,
    );
    write_json(
        &opts.out,
        "fig_scaling_hotq",
        &HotqDoc {
            benchmark: "single-hot-queue scaling: concurrent claim-mode workers".into(),
            frame_bytes: FRAME,
            work_passes: WORK_PASSES,
            packets_per_point: hotq_packets,
            points: hotq,
            hotq_speedup,
            speedup_workers: max_w,
        },
    );
}
