//! Reproduces Fig. 13: packet forwarding (middlebox) drop rates.

use bench::{experiments, pct, write_json, write_table, Opts};

fn main() {
    let opts = Opts::parse();
    let trace = experiments::border_trace(&opts.trace_config());
    let points =
        experiments::trace_experiment(&trace, &experiments::fig13_engines(), &[4, 5, 6], true);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.engine.clone(),
                format!("{} queues", p.queues),
                pct(p.drop_rate),
            ]
        })
        .collect();
    write_table(
        &opts.out,
        "fig13",
        "Figure 13 — packet forwarding on the border trace (x = 300, NETMAP excluded)",
        &["engine", "queues", "drop rate"],
        &rows,
    );
    write_json(&opts.out, "fig13", &points);
}
