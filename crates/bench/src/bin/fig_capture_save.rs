//! The capture-and-save loss-rate experiment (§4).
//!
//! Fixes an emulated disk bandwidth and sweeps the offered load across
//! it: below the disk's rate the save path is lossless; above it the
//! sink's bounded handoff sheds the excess, explicitly counted into
//! `disk_drop_packets`. Because the drop policy is exact, every run
//! partitions the delivered packets into `written + disk_drop` — the
//! disk-leg loss rate is measured, not inferred — and the capture
//! path's own drop counter is reported alongside to show the headline
//! property: capture stays lossless no matter how overloaded the disk
//! is.
//!
//! Injection is paced to the target packet rate (spin-sleep on a
//! deadline schedule), so "offered load" means wall-clock rate, not
//! memory-speed flooding.

use apps::save::run;
use bench::{pct, write_json, write_table, Opts};
use capdisk::{DiskSinkConfig, RotationPolicy, SinkMode};
use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use serde::Serialize;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wirecap::WireCapConfig;

/// Emulated disk bandwidth every point writes against, bytes/s.
const DISK_BPS: u64 = 8_000_000;
/// Application payload bytes per generated packet.
const PAYLOAD: usize = 300;

#[derive(Debug, Serialize)]
struct Point {
    /// Offered load, packets/s (wall-clock paced).
    offered_pps: u64,
    /// Offered load as a fraction of the emulated disk bandwidth.
    offered_over_disk: f64,
    injected: u64,
    delivered: u64,
    written: u64,
    disk_dropped: u64,
    capture_dropped: u64,
    files: usize,
    /// Disk-leg loss rate: `disk_dropped / delivered`.
    disk_loss_rate: f64,
}

fn run_point(offered_pps: u64, secs: f64, dir: &std::path::Path) -> Point {
    std::fs::remove_dir_all(dir).ok();
    let total = ((offered_pps as f64 * secs) as u64).max(1);
    let queues = 2;
    let nic = LiveNic::new(queues, 8192);
    let mut cfg = WireCapConfig::basic(64, 48, 0);
    cfg.capture_timeout_ns = 2_000_000;
    let mut sink = DiskSinkConfig::new(dir);
    sink.rotation = RotationPolicy {
        max_file_bytes: 4 << 20,
        max_file_duration: None,
    };
    sink.handoff_chunks = 8;
    sink.max_write_bps = Some(DISK_BPS);
    let injector = {
        let nic = Arc::clone(&nic);
        std::thread::spawn(move || {
            let mut b = PacketBuilder::new();
            let start = Instant::now();
            let gap_ns = 1_000_000_000 / offered_pps.max(1);
            for i in 0..total {
                // Deadline pacing: sleep toward each packet's due time,
                // spin the last stretch for accuracy.
                let due = start + Duration::from_nanos(i * gap_ns);
                loop {
                    let now = Instant::now();
                    if now >= due {
                        break;
                    }
                    let left = due - now;
                    if left > Duration::from_micros(200) {
                        std::thread::sleep(left - Duration::from_micros(100));
                    } else {
                        std::hint::spin_loop();
                    }
                }
                let flow = FlowKey::udp(
                    Ipv4Addr::new(10, (i >> 8) as u8 & 0x7f, i as u8, 1),
                    (1_000 + i % 50_000) as u16,
                    Ipv4Addr::new(131, 225, 2, 1),
                    443,
                );
                let pkt = b.build_packet(i * gap_ns, &flow, PAYLOAD).unwrap();
                while nic.inject(pkt.clone()).is_none() {
                    std::thread::yield_now();
                }
            }
            nic.stop();
        })
    };
    let out = run(Arc::clone(&nic), cfg, SinkMode::Disk(sink));
    injector.join().unwrap();
    let report = out.disk.as_ref().expect("disk mode");
    assert!(
        out.is_conserved(),
        "unaccounted packets at {offered_pps} pps: {report:?}"
    );
    let delivered = out.delivered_packets;
    let dropped = report.dropped_packets();
    // Rough on-disk bytes per packet (EPB framing + Ethernet/IP/UDP
    // headers), used only for the offered/disk ratio column.
    let wire_bytes = (PAYLOAD + 42 + 36) as f64;
    let point = Point {
        offered_pps,
        offered_over_disk: offered_pps as f64 * wire_bytes / DISK_BPS as f64,
        injected: total,
        delivered,
        written: report.written_packets(),
        disk_dropped: dropped,
        capture_dropped: out.capture_drop_packets,
        files: report.files().len(),
        disk_loss_rate: if delivered == 0 {
            0.0
        } else {
            dropped as f64 / delivered as f64
        },
    };
    std::fs::remove_dir_all(dir).ok();
    point
}

fn main() {
    let opts = Opts::parse();
    let secs = if opts.small { 0.4 } else { 2.0 };
    let dir = std::env::temp_dir().join(format!("wirecap-fig-capture-save-{}", std::process::id()));
    // From well under the disk's rate (~21k pps saturates 8 MB/s) to
    // 4× over it.
    let sweep: &[u64] = &[5_000, 10_000, 20_000, 40_000, 80_000];
    let points: Vec<Point> = sweep
        .iter()
        .map(|&pps| run_point(pps, secs, &dir))
        .collect();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.offered_pps.to_string(),
                format!("{:.2}x", p.offered_over_disk),
                p.delivered.to_string(),
                p.written.to_string(),
                p.disk_dropped.to_string(),
                pct(p.disk_loss_rate),
                p.capture_dropped.to_string(),
                p.files.to_string(),
            ]
        })
        .collect();
    write_table(
        &opts.out,
        "fig_capture_save",
        "Capture-and-save — disk-leg loss rate vs. offered load over an 8 MB/s disk (capture side lossless)",
        &[
            "offered pps",
            "load/disk",
            "delivered",
            "written",
            "disk drop",
            "disk loss",
            "capture drop",
            "files",
        ],
        &rows,
    );
    write_json(&opts.out, "fig_capture_save", &points);
}
