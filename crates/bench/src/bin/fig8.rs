//! Reproduces Fig. 8: basic-mode capture at wire rate with x = 0.

use apps::harness::EngineKind;
use bench::{experiments, pct, write_json, write_table, Opts};
use wirecap::WireCapConfig;

fn main() {
    let opts = Opts::parse();
    let engines = vec![
        EngineKind::Dna,
        EngineKind::PfRing,
        EngineKind::Netmap,
        EngineKind::WireCap(WireCapConfig::basic(64, 100, 0)),
        EngineKind::WireCap(WireCapConfig::basic(128, 100, 0)),
        EngineKind::WireCap(WireCapConfig::basic(256, 100, 0)),
        EngineKind::WireCap(WireCapConfig::basic(256, 500, 0)),
    ];
    let points = experiments::burst_sweep(&engines, 0, opts.scale(10_000_000));
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| vec![p.engine.clone(), p.p.to_string(), pct(p.drop_rate)])
        .collect();
    write_table(
        &opts.out,
        "fig8",
        "Figure 8 — basic-mode capture, no processing load (x = 0)",
        &["engine", "P (packets)", "drop rate"],
        &rows,
    );
    write_json(&opts.out, "fig8", &points);
}
