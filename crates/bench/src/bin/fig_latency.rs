//! `fig_latency` — capture-to-delivery tail latency: pool size ×
//! offered load × tuning mode (DESIGN.md §4.16, EXPERIMENTS.md).
//!
//! The cache-resident fast path's headline experiment. Each point runs
//! the live engine over nicsim with a one-worker consumer pool and a
//! deterministic blocking per-chunk stage, then reports the
//! p50/p99/p99.9 of the engine's own `latency_ns` histogram
//! (sub-bucket interpolated). The sweep shows the bufferbloat story in
//! chunk units: whenever offered load presses the delivery rate, a
//! `Throughput`-tuned pool queues R chunks deep and p99.9 grows with
//! the backlog the pool permits — while
//! `CacheResident` caps the pool (and the consumer's backlog, via the
//! fast-recycle depth bound) so the tail stays structural.
//!
//! Conservation is asserted inside every data point before its
//! quantiles are reported. `--small` runs the reduced sweep
//! `scripts/check.sh` uses.

use bench::latency::{latency_point, LatencyPoint, CHUNK_IO_US, M};
use bench::scaling::FRAME;
use bench::{write_json, write_table, Opts};
use serde::Serialize;
use wirecap::config::TuningMode;

#[derive(Serialize)]
struct Doc {
    benchmark: String,
    frame_bytes: usize,
    cells_per_chunk: usize,
    chunk_io_us: u64,
    packets_per_point: u64,
    points: Vec<LatencyPoint>,
    /// p99.9 at the largest pool, saturating load: `Throughput` vs
    /// `CacheResident` — the pair the SLO gate in `scripts/check.sh`
    /// checks (via the `latency_slo` entry in `BENCH_hotpath.json`;
    /// this figure shows the whole sweep behind it).
    throughput_p999_ns: u64,
    cache_resident_p999_ns: u64,
    tail_reduction: f64,
}

fn main() {
    let opts = Opts::parse();
    let packets: u64 = if opts.small { 120_000 } else { 600_000 };
    // Nominal delivery capacity of the one-worker consumer: one chunk
    // (M packets) per blocking stage.
    let capacity_pps = M as u64 * 1_000_000 / CHUNK_IO_US;
    let pool_sizes: Vec<usize> = if opts.small {
        vec![64, 256]
    } else {
        vec![64, 256, 512]
    };
    // Offered loads: comfortably below delivered capacity (the
    // nominal M/io rate is optimistic — sleep granularity and the
    // payload fold push the real rate well under it, so /8 is the
    // safely-subcritical point), then saturating (0 = inject as fast
    // as the ring accepts).
    let loads: Vec<u64> = vec![capacity_pps / 8, 0];
    let llc_bytes: u64 = 4 << 20;

    let mut points: Vec<LatencyPoint> = Vec::new();
    for &r in &pool_sizes {
        for &load in &loads {
            for tuning in [
                TuningMode::Throughput,
                TuningMode::CacheResident { llc_bytes },
            ] {
                let mode = match tuning {
                    TuningMode::Throughput => "throughput",
                    TuningMode::CacheResident { .. } => "cache_resident",
                };
                let load_desc = if load == 0 {
                    "saturating".to_string()
                } else {
                    format!("{load} pps")
                };
                eprintln!("fig_latency: R={r}, load {load_desc}, {mode}, {packets} packets");
                let p = latency_point(tuning, r, load, packets);
                eprintln!(
                    "fig_latency:   r_eff={} depth={} p50={}us p99={}us p99.9={}us",
                    p.r_effective,
                    p.recycle_depth,
                    p.p50_ns / 1_000,
                    p.p99_ns / 1_000,
                    p.p999_ns / 1_000
                );
                points.push(p);
            }
        }
    }

    // The headline pair: largest pool, saturating load.
    let max_r = *pool_sizes.last().expect("non-empty sweep");
    let find = |mode: &str| {
        points
            .iter()
            .find(|p| p.mode == mode && p.pool_chunks == max_r && p.offered_pps == 0)
            .expect("headline point present")
    };
    let thr = find("throughput");
    let cache = find("cache_resident");
    let tail_reduction = thr.p999_ns as f64 / cache.p999_ns.max(1) as f64;

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.mode.to_string(),
                p.pool_chunks.to_string(),
                p.r_effective.to_string(),
                p.recycle_depth.to_string(),
                if p.offered_pps == 0 {
                    "saturating".into()
                } else {
                    p.offered_pps.to_string()
                },
                format!("{:.0}", p.pps),
                (p.p50_ns / 1_000).to_string(),
                (p.p99_ns / 1_000).to_string(),
                (p.p999_ns / 1_000).to_string(),
            ]
        })
        .collect();
    write_table(
        &opts.out,
        "fig_latency",
        &format!(
            "Capture-to-delivery latency quantiles (us), pool size x load x tuning \
             ({packets} packets/point, {FRAME}B frames, M={M}, {CHUNK_IO_US}us/chunk I/O); \
             saturating R={max_r} p99.9: throughput {}us vs cache_resident {}us ({tail_reduction:.1}x)",
            thr.p999_ns / 1_000,
            cache.p999_ns / 1_000
        ),
        &[
            "mode",
            "R_cfg",
            "R_eff",
            "depth",
            "offered_pps",
            "pps",
            "p50_us",
            "p99_us",
            "p999_us",
        ],
        &rows,
    );
    write_json(
        &opts.out,
        "fig_latency",
        &Doc {
            benchmark: "tail latency: pool size x offered load x tuning mode".into(),
            frame_bytes: FRAME,
            cells_per_chunk: M,
            chunk_io_us: CHUNK_IO_US,
            packets_per_point: packets,
            throughput_p999_ns: thr.p999_ns,
            cache_resident_p999_ns: cache.p999_ns,
            tail_reduction,
            points,
        },
    );
}
