//! 40 GbE projection — the paper's §7 near-term future work.
//!
//! "Although our current work has been with 10 GE technology, our
//! objective is to support 40 GE and, eventually, 100 GE technologies."
//!
//! The simulation substrate is rate-parametric, so the projection is a
//! sweep: 64-byte wire rate at 10/40/100 GbE into one queue, x = 0
//! (can the engine keep up at all?) and the burst-absorption question at
//! x = 300 (how much pool does a 40 GbE burst need?).

use apps::harness::{run, EngineKind};
use bench::{pct, write_json, write_table, Opts};
use engines::EngineConfig;
use serde::Serialize;
use sim::time::wire_rate_pps;
use traffic::WireRateGen;
use wirecap::WireCapConfig;

#[derive(Serialize)]
struct Row {
    link_gbps: f64,
    engine: String,
    p: u64,
    drop_rate: f64,
}

fn main() {
    let opts = Opts::parse();
    let mut rows_data = Vec::new();
    // Pool sizes scaled with line rate: the §3.2.2a bound says the
    // lossless burst is ∝ R·M, so 4× the rate needs ≈ 4× the pool for
    // the same burst duration.
    for (gbps, r) in [(10.0f64, 100usize), (40.0, 400), (100.0, 1000)] {
        let pps = wire_rate_pps(64, gbps);
        let p = opts.scale(100_000).max(10_000) * (gbps as u64 / 10);
        for (label, kind) in [
            ("DNA".to_string(), EngineKind::Dna),
            (
                format!("WireCAP-B-(256,{r})"),
                EngineKind::WireCap(WireCapConfig::basic(256, r, 300)),
            ),
            (
                "WireCAP-B-(256,100)".to_string(),
                EngineKind::WireCap(WireCapConfig::basic(256, 100, 300)),
            ),
        ] {
            let mut gen = WireRateGen::new(p, 64, pps, 16);
            let res = run(kind, 1, EngineConfig::paper(300), &mut gen);
            rows_data.push(Row {
                link_gbps: gbps,
                engine: label,
                p,
                drop_rate: res.drop_rate(),
            });
        }
    }
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                format!("{:.0} GbE", r.link_gbps),
                r.engine.clone(),
                r.p.to_string(),
                pct(r.drop_rate),
            ]
        })
        .collect();
    write_table(
        &opts.out,
        "study_40gbe",
        "Study — 40/100 GbE projection: same-duration 64-byte burst, x = 300",
        &["link", "engine", "P (packets)", "drop rate"],
        &rows,
    );
    write_json(&opts.out, "study_40gbe", &rows_data);
}
