//! Timestamp accuracy vs. overhead — the §5c discussion, quantified.
//!
//! "almost all software-based packet capture engines suffer the
//! timestamp accuracy problem and the uniqueness of timestamp problem if
//! NIC does not provide high-resolution timestamp support in hardware."

use apps::timestamping::{evaluate, TimestampSource};
use bench::{write_json, write_table, Opts};
use traffic::{TrafficSource, WireRateGen};

fn main() {
    let opts = Opts::parse();
    // True arrival timeline: 64-byte wire rate (the adversarial case).
    let mut gen = WireRateGen::paper_burst(opts.scale(1_000_000));
    let mut arrivals = Vec::new();
    while let Some(a) = gen.next_arrival() {
        arrivals.push(a.ts_ns);
    }

    let sources = [
        TimestampSource::OsJiffy {
            resolution_ns: 4_000_000,
        }, // HZ=250
        TimestampSource::OsJiffy {
            resolution_ns: 1_000_000,
        }, // HZ=1000
        TimestampSource::PerPacketTsc { cost_cycles: 60.0 },
        TimestampSource::BatchTsc {
            batch: 64,
            cost_cycles: 60.0,
        },
        TimestampSource::BatchTsc {
            batch: 256,
            cost_cycles: 60.0,
        },
    ];
    let reports: Vec<_> = sources.iter().map(|&s| evaluate(s, &arrivals)).collect();
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.source.clone(),
                format!("{:.2}", r.mean_error_ns / 1e3),
                format!("{:.2}", r.max_error_ns as f64 / 1e3),
                format!("{:.1}%", r.duplicate_fraction * 100.0),
                format!("{:.1}%", r.cpu_share_at_rate * 100.0),
            ]
        })
        .collect();
    write_table(
        &opts.out,
        "study_timestamps",
        "Study — timestamping at 64-byte wire rate (14.88 Mp/s)",
        &[
            "source",
            "mean err µs",
            "max err µs",
            "duplicates",
            "CPU share",
        ],
        &rows,
    );
    write_json(&opts.out, "study_timestamps", &reports);
}
