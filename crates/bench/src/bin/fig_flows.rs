//! `fig_flows` — online flow analytics at scale (DESIGN.md §4.15,
//! EXPERIMENTS.md).
//!
//! Sweeps flow-universe size × pool workers over border-trace-shaped
//! traffic and reports end-to-end delivered pps with the per-worker
//! [`flowstat::FlowSink`] stage enabled: exact set-associative flow
//! table, top-K candidate tracking, and the per-chunk telemetry flush,
//! exactly as `run_pooled_flows` wires them. Every point asserts flow
//! conservation (each delivered packet lands in exactly one live or
//! eviction-folded flow count) before its rate is reported, and points
//! without table eviction additionally check the merged top-16 against
//! the trace's ground truth.
//!
//! `--small` runs a single reduced point (the CI smoke configuration
//! `scripts/check.sh` uses).

use apps::multi_pkt_handler::{run_pooled_flows, FlowReport};
use bench::{write_json, write_table, Opts};
use flowstat::{FlowSinkConfig, PackedFlowKey};
use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use traffic::{generate_border_trace, BorderTraceConfig, Trace};
use wirecap::WireCapConfig;

/// Receive queues per point (RSS spreads the trace's flows over these).
const QUEUES: usize = 4;
/// Filter repetitions in each worker's `pkt_handler` (light consumer).
const FILTER_X: u32 = 1;
/// Heavy hitters reported per point.
const K: usize = 16;

/// One measured configuration.
#[derive(Serialize)]
struct FlowPoint {
    flows: usize,
    trace_packets: usize,
    workers: usize,
    table_capacity: usize,
    elapsed_s: f64,
    pps: f64,
    tracked_packets: u64,
    live_flows: u64,
    evicted_flows: u64,
    evicted_packets: u64,
    hash_collisions: u64,
    top1_packets: u64,
    /// Sum of the merged top-16 counts (elephant share of the trace).
    top16_packets: u64,
    /// Whether the merged top-16 matched the trace ground truth
    /// exactly (asserted whenever the table never evicted).
    exact_top16: bool,
}

/// The trace's own ground truth: top `k` flows by packet count, ties
/// broken by packed key like the tracker does.
fn true_top(trace: &Trace, k: usize) -> Vec<(FlowKey, u64)> {
    let sizes = trace.flow_sizes();
    let mut all: Vec<(FlowKey, u64)> = trace
        .flows()
        .iter()
        .zip(&sizes)
        .filter(|(_, n)| **n > 0)
        .map(|(f, n)| (*f, *n))
        .collect();
    all.sort_unstable_by(|a, b| {
        b.1.cmp(&a.1)
            .then(PackedFlowKey::from_flow(&a.0).cmp(&PackedFlowKey::from_flow(&b.0)))
    });
    all.truncate(k);
    all
}

/// Every delivered packet must sit in exactly one flow count: live in
/// some worker's table or folded into its eviction aggregate.
fn assert_conserved(report: &FlowReport, injected: u64) {
    assert_eq!(report.processed, injected, "packets lost in delivery");
    assert_eq!(report.unparsed, 0, "border trace frames all parse");
    assert_eq!(
        report.tracked_packets, report.processed,
        "every processed packet was recorded"
    );
    let pool_packets: u64 = report.workers.iter().map(|w| w.packets).sum();
    assert_eq!(pool_packets, report.processed, "pool reports disagree");
    assert!(
        report.evicted_packets <= report.tracked_packets,
        "eviction aggregate exceeds recorded packets"
    );
}

fn run_point(trace: &Arc<Trace>, flows: usize, workers: usize) -> FlowPoint {
    let injected = trace.len() as u64;
    let nic = LiveNic::new(QUEUES, 4096);
    let injector = {
        let nic = Arc::clone(&nic);
        let trace = Arc::clone(trace);
        std::thread::spawn(move || {
            let mut b = PacketBuilder::new();
            for r in trace.records() {
                let pkt = trace.render(&mut b, r);
                while nic.inject(pkt.clone()).is_none() {
                    std::thread::yield_now();
                }
            }
            nic.stop();
        })
    };
    let mut cfg = WireCapConfig::basic(64, 32, 0);
    cfg.capture_timeout_ns = 2_000_000;
    let flow_cfg = FlowSinkConfig::default();
    let start = Instant::now();
    let report = run_pooled_flows(Arc::clone(&nic), cfg, FILTER_X, workers, flow_cfg, K);
    injector.join().expect("injector panicked");
    let elapsed = start.elapsed().as_secs_f64();

    assert_conserved(&report, injected);
    let exact_top16 = if report.evicted_flows == 0 {
        assert_eq!(
            report.top,
            true_top(trace, K),
            "eviction-free run must report the exact top-{K}"
        );
        true
    } else {
        false
    };
    FlowPoint {
        flows,
        trace_packets: trace.len(),
        workers,
        table_capacity: flow_cfg.table_capacity,
        elapsed_s: elapsed,
        pps: injected as f64 / elapsed,
        tracked_packets: report.tracked_packets,
        live_flows: report.live_flows,
        evicted_flows: report.evicted_flows,
        evicted_packets: report.evicted_packets,
        hash_collisions: report.hash_collisions,
        top1_packets: report.top.first().map_or(0, |t| t.1),
        top16_packets: report.top.iter().map(|t| t.1).sum(),
        exact_top16,
    }
}

/// The border trace at a given flow-universe size. The packet budget
/// grows with the universe so the large points actually *observe*
/// their flows (a 1M-flow point needs multiple packets per flow for
/// the table to fill and churn).
fn trace_for(flows: usize, packets: usize) -> Trace {
    generate_border_trace(&BorderTraceConfig {
        flows,
        packets,
        ..BorderTraceConfig::default()
    })
}

#[derive(Serialize)]
struct Doc {
    benchmark: String,
    queues: usize,
    filter_x: u32,
    k: usize,
    points: Vec<FlowPoint>,
}

fn main() {
    let opts = Opts::parse();
    let (flow_counts, worker_counts): (Vec<usize>, Vec<usize>) = if opts.small {
        (vec![2_000], vec![2])
    } else {
        (vec![10_000, 100_000, 1_000_000], vec![1, 2, 4])
    };

    let mut points: Vec<FlowPoint> = Vec::new();
    for &flows in &flow_counts {
        let packets = if opts.small {
            50_000
        } else {
            (flows * 3).max(1_000_000)
        };
        eprintln!("fig_flows: generating border trace, {flows} flows, {packets} packets");
        let trace = Arc::new(trace_for(flows, packets));
        for &w in &worker_counts {
            eprintln!("fig_flows: {flows} flows x {w} worker(s)");
            let p = run_point(&trace, flows, w);
            eprintln!(
                "fig_flows: {:.0} pps, {} live flows, {} evicted, top1 {}",
                p.pps, p.live_flows, p.evicted_flows, p.top1_packets
            );
            points.push(p);
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.flows.to_string(),
                p.trace_packets.to_string(),
                p.workers.to_string(),
                format!("{:.0}", p.pps),
                p.live_flows.to_string(),
                p.evicted_flows.to_string(),
                p.top1_packets.to_string(),
                p.top16_packets.to_string(),
                if p.exact_top16 { "yes" } else { "n/a" }.to_string(),
            ]
        })
        .collect();
    write_table(
        &opts.out,
        "fig_flows",
        &format!(
            "Online flow analytics: delivered pps with per-worker FlowSink \
             ({QUEUES} queues, filter x{FILTER_X}, 1M-slot tables, top-{K} merged); \
             conservation asserted at every point"
        ),
        &[
            "flows",
            "packets",
            "workers",
            "pps",
            "live",
            "evicted",
            "top1",
            "top16_sum",
            "exact",
        ],
        &rows,
    );
    write_json(
        &opts.out,
        "fig_flows",
        &Doc {
            benchmark: "online flow analytics at millions of flows (DESIGN.md §4.15)".into(),
            queues: QUEUES,
            filter_x: FILTER_X,
            k: K,
            points,
        },
    );
}
