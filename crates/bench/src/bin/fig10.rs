//! Reproduces Fig. 10: buffering depends on R·M, not on R or M alone.

use apps::harness::EngineKind;
use bench::{experiments, pct, write_json, write_table, Opts};
use wirecap::WireCapConfig;

fn main() {
    let opts = Opts::parse();
    let engines = vec![
        EngineKind::WireCap(WireCapConfig::basic(64, 400, 300)),
        EngineKind::WireCap(WireCapConfig::basic(128, 200, 300)),
        EngineKind::WireCap(WireCapConfig::basic(256, 100, 300)),
    ];
    let points = experiments::burst_sweep(&engines, 300, opts.scale(10_000_000));
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| vec![p.engine.clone(), p.p.to_string(), pct(p.drop_rate)])
        .collect();
    write_table(
        &opts.out,
        "fig10",
        "Figure 10 — R and M varied with R·M fixed (x = 300)",
        &["engine", "P (packets)", "drop rate"],
        &rows,
    );
    write_json(&opts.out, "fig10", &points);
}
