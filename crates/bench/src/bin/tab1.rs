//! Reproduces Table 1: packet drop rates under load imbalance (x = 300).

use bench::{experiments, pct, write_json, write_table, Opts};

fn main() {
    let opts = Opts::parse();
    let trace = experiments::border_trace(&opts.trace_config());
    let rows_data = experiments::tab1(&trace, 6);

    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.engine.clone(),
                pct(r.hot_capture),
                pct(r.hot_delivery),
                pct(r.cold_capture),
                pct(r.cold_delivery),
            ]
        })
        .collect();
    write_table(
        &opts.out,
        "tab1",
        "Table 1 — drop rates at the hot and cold queues (x = 300)",
        &[
            "engine",
            "hot capture",
            "hot delivery",
            "cold capture",
            "cold delivery",
        ],
        &rows,
    );
    write_json(&opts.out, "tab1", &rows_data);
}
