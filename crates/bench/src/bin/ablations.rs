//! Ablations of WireCAP's design choices.
//!
//! Three questions DESIGN.md calls out:
//! 1. Does the **timeout partial-capture** path matter? (Disable it and
//!    see what happens to delivery completeness and latency.)
//! 2. Does the **offload target policy** matter, or only the act of
//!    offloading? (Shortest-queue vs round-robin vs static neighbor.)
//! 3. How much does the **offload penalty** (core-affinity loss) erode
//!    the offloading win?

use apps::harness::run_experiment;
use bench::{experiments, pct, write_json, write_table, Opts};
use serde::Serialize;
use traffic::TraceCursor;
use wirecap::buddy::{BuddyGroup, BuddyGroups, PlacementPolicy};
use wirecap::{WireCapConfig, WireCapEngine};

#[derive(Serialize)]
struct Row {
    variant: String,
    drop_rate: f64,
    delivered: u64,
    mean_latency_us: f64,
}

fn main() {
    let opts = Opts::parse();
    let trace = experiments::border_trace(&opts.trace_config());
    let queues = 6;
    let mut rows_data: Vec<Row> = Vec::new();

    let mut run_variant = |label: String, engine: &mut WireCapEngine| {
        let mut cursor = TraceCursor::new(&trace);
        let res = run_experiment(engine, &mut cursor);
        rows_data.push(Row {
            variant: label,
            drop_rate: res.drop_rate(),
            delivered: res.total.delivered,
            mean_latency_us: res.latency.mean_ns() / 1e3,
        });
    };

    // 1. Timeout ablation (basic mode, the timeout's home turf).
    for (label, timeout_ns) in [
        ("timeout 10 ms (default)", 10_000_000u64),
        ("timeout 100 ms", 100_000_000),
        ("timeout disabled (1 h)", 3_600_000_000_000),
    ] {
        let mut cfg = WireCapConfig::advanced(256, 100, 0.6, 300);
        cfg.capture_timeout_ns = timeout_ns;
        let mut e = WireCapEngine::new(queues, cfg);
        run_variant(format!("A-(256,100,60%) {label}"), &mut e);
    }

    // 2. Placement-policy ablation.
    for policy in [
        PlacementPolicy::ShortestQueue,
        PlacementPolicy::RoundRobin,
        PlacementPolicy::NextNeighbor,
    ] {
        let cfg = WireCapConfig::advanced(256, 100, 0.6, 300);
        let groups = BuddyGroups::new(queues, vec![BuddyGroup::all(queues).with_policy(policy)]);
        let mut e = WireCapEngine::with_groups(queues, cfg, groups);
        run_variant(format!("A-(256,100,60%) placement {policy:?}"), &mut e);
    }

    // 3. Offload-penalty ablation.
    for penalty in [1.0, 0.97, 0.8, 0.6] {
        let mut cfg = WireCapConfig::advanced(256, 100, 0.6, 300);
        cfg.offload_penalty = penalty;
        let mut e = WireCapEngine::new(queues, cfg);
        run_variant(
            format!("A-(256,100,60%) affinity penalty {penalty}"),
            &mut e,
        );
    }

    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                pct(r.drop_rate),
                r.delivered.to_string(),
                format!("{:.0}", r.mean_latency_us),
            ]
        })
        .collect();
    write_table(
        &opts.out,
        "ablations",
        "Ablations — WireCAP design choices on the border trace (6 queues, x = 300)",
        &["variant", "drop rate", "delivered", "mean latency µs"],
        &rows,
    );
    write_json(&opts.out, "ablations", &rows_data);
}
