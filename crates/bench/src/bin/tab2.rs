//! Reproduces Table 2: the qualitative engine comparison.

use bench::{write_json, write_table, Opts};
use engines::capabilities::table2;

fn main() {
    let opts = Opts::parse();
    let caps = table2();
    let rows: Vec<Vec<String>> = caps
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("Goal: {}.", c.goal),
                format!("Deficiency: {}.", c.deficiency),
            ]
        })
        .collect();
    write_table(
        &opts.out,
        "tab2",
        "Table 2 — WireCAP vs. existing packet-capture engines",
        &["engine", "goal", "deficiency"],
        &rows,
    );
    write_json(&opts.out, "tab2", &caps);
}
