//! Reproduces Fig. 9: basic-mode capture under heavy load (x = 300).

use apps::harness::EngineKind;
use bench::{experiments, pct, write_json, write_table, Opts};
use wirecap::WireCapConfig;

fn main() {
    let opts = Opts::parse();
    let engines = vec![
        EngineKind::Dna,
        EngineKind::PfRing,
        EngineKind::Netmap,
        EngineKind::WireCap(WireCapConfig::basic(256, 100, 300)),
        EngineKind::WireCap(WireCapConfig::basic(256, 500, 300)),
    ];
    let points = experiments::burst_sweep(&engines, 300, opts.scale(10_000_000));
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| vec![p.engine.clone(), p.p.to_string(), pct(p.drop_rate)])
        .collect();
    write_table(
        &opts.out,
        "fig9",
        "Figure 9 — basic-mode capture, heavy processing load (x = 300)",
        &["engine", "P (packets)", "drop rate"],
        &rows,
    );
    write_json(&opts.out, "fig9", &points);
}
