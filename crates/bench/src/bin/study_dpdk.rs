//! WireCAP vs. DPDK — the paper's §6 comparison and §7 future work.
//!
//! "DPDK does not provide an offloading mechanism as WireCAP. To avoid
//! packet drops, a DPDK-based application must implement an offloading
//! mechanism in the application layer." (§6) "Comparing WireCAP with
//! DPDK (with offloading) will be our future research areas." (§7)
//!
//! Matched buffering (DPDK mempools sized to WireCAP-B-(256,100)'s R·M),
//! the border trace, x = 300, 4–6 queues.

use apps::harness::EngineKind;
use bench::{experiments, pct, write_json, write_table, Opts};
use wirecap::WireCapConfig;

fn main() {
    let opts = Opts::parse();
    let trace = experiments::border_trace(&opts.trace_config());
    let engines = vec![
        EngineKind::Dpdk,
        EngineKind::DpdkAppOffload(0.6),
        EngineKind::WireCap(WireCapConfig::basic(256, 100, 300)),
        EngineKind::WireCap(WireCapConfig::advanced(256, 100, 0.6, 300)),
    ];
    let points = experiments::trace_experiment(&trace, &engines, &[4, 5, 6], false);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.engine.clone(),
                format!("{} queues", p.queues),
                pct(p.drop_rate),
            ]
        })
        .collect();
    write_table(
        &opts.out,
        "study_dpdk",
        "Study — WireCAP vs DPDK (matched 25.6k-packet buffering, x = 300)",
        &["engine", "queues", "drop rate"],
        &rows,
    );
    write_json(&opts.out, "study_dpdk", &points);
}
