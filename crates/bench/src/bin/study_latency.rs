//! Capture-to-delivery latency — the §5c batching cost, quantified.
//!
//! "WireCAP uses batch processing to reduce packet capture costs.
//! Applying this type of technique may entail side effects, such as
//! latency increases…" This study measures delivery latency for DNA
//! (per-packet delivery) against WireCAP with several chunk sizes M and
//! capture timeouts, at a moderate load where nobody drops.

use apps::harness::{run, EngineKind};
use bench::{write_json, write_table, Opts};
use engines::EngineConfig;
use serde::Serialize;
use traffic::WireRateGen;
use wirecap::WireCapConfig;

#[derive(Serialize)]
struct Row {
    engine: String,
    mean_us: f64,
    p99_us: f64,
    max_us: f64,
}

fn main() {
    let opts = Opts::parse();
    // 20 k p/s against a 38.8 k p/s consumer: queueing is mild, so the
    // measured latency is dominated by each engine's delivery mechanism.
    let cfg = EngineConfig::paper(300);
    let packets = opts.scale(400_000);
    let mut engines: Vec<(String, EngineKind)> = vec![("DNA".into(), EngineKind::Dna)];
    for m in [64usize, 256] {
        let wc = WireCapConfig::basic(m, 25_600 / m + 16, 300);
        engines.push((wc.name(), EngineKind::WireCap(wc)));
    }
    for timeout_ms in [1u64, 10, 50] {
        let mut wc = WireCapConfig::basic(256, 116, 300);
        wc.capture_timeout_ns = timeout_ms * 1_000_000;
        engines.push((
            format!("WireCAP-B-(256) timeout {timeout_ms} ms"),
            EngineKind::WireCap(wc),
        ));
    }

    let mut rows_data = Vec::new();
    for (label, kind) in engines {
        let mut gen = WireRateGen::new(packets, 64, 20_000.0, 8);
        let res = run(kind, 1, cfg, &mut gen);
        assert_eq!(res.total.overall_drop_rate(), 0.0, "{label} dropped");
        let l = &res.latency;
        rows_data.push(Row {
            engine: label,
            mean_us: l.mean_ns() / 1e3,
            p99_us: l.quantile_ns(0.99) as f64 / 1e3,
            max_us: l.max_ns() as f64 / 1e3,
        });
    }
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.engine.clone(),
                format!("{:.1}", r.mean_us),
                format!("{:.1}", r.p99_us),
                format!("{:.1}", r.max_us),
            ]
        })
        .collect();
    write_table(
        &opts.out,
        "study_latency",
        "Study — capture-to-delivery latency at 20 k p/s (no drops anywhere)",
        &["engine", "mean µs", "p99 µs", "max µs"],
        &rows,
    );
    write_json(&opts.out, "study_latency", &rows_data);
}
