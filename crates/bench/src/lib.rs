//! # bench — figure and table regeneration harness
//!
//! One binary per table/figure of the paper's evaluation (§2.2 and §4):
//!
//! | binary  | reproduces |
//! |---------|------------|
//! | `fig3`  | Fig. 3 — per-queue 10 ms load time series (load imbalance) |
//! | `tab1`  | Table 1 — capture/delivery drop rates at the hot and cold queues |
//! | `fig8`  | Fig. 8 — basic-mode capture at wire rate, x = 0 |
//! | `fig9`  | Fig. 9 — basic-mode capture under heavy load, x = 300 |
//! | `fig10` | Fig. 10 — R·M invariance |
//! | `fig11` | Fig. 11 — advanced mode vs. every baseline |
//! | `fig12` | Fig. 12 — offloading threshold sweep |
//! | `fig13` | Fig. 13 — packet forwarding |
//! | `fig14` | Fig. 14 — two-NIC scalability under bus saturation |
//! | `tab2`  | Table 2 — qualitative engine comparison |
//! | `fig_scaling` | beyond the paper — pooled vs. per-queue delivery scaling (DESIGN.md §4.11) |
//! | `fig_all` | everything above, writing `results/` |
//!
//! Every binary prints the same rows/series the paper reports and writes
//! machine-readable JSON plus a plain-text table under `results/`. Runs
//! are deterministic: fixed seeds, virtual time.
//!
//! Scale: by default the trace-driven experiments use the full 5-million
//! packet synthetic border trace (as in the paper) and the sweeps go to
//! P = 10⁷. Pass `--small` to any binary for a ~100× faster smoke run
//! with the same qualitative shapes (used by CI and the integration
//! tests).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use serde::Serialize;
use std::io::Write;
use std::path::{Path, PathBuf};

pub mod experiments;
pub mod fig14_model;
pub mod latency;
pub mod scaling;

/// Command-line options shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Run the reduced-scale variant.
    pub small: bool,
    /// Output directory (default `results/`).
    pub out: PathBuf,
}

impl Opts {
    /// Parses `--small` and `--out DIR` from `std::env::args`.
    pub fn parse() -> Self {
        let mut opts = Opts {
            small: false,
            out: PathBuf::from("results"),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--small" => opts.small = true,
                "--out" => opts.out = PathBuf::from(args.next().expect("--out needs a directory")),
                "--help" | "-h" => {
                    eprintln!("usage: [--small] [--out DIR]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other:?} (try --help)");
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    /// The border-trace configuration at the selected scale.
    pub fn trace_config(&self) -> traffic::BorderTraceConfig {
        if self.small {
            traffic::BorderTraceConfig::small()
        } else {
            traffic::BorderTraceConfig::default()
        }
    }

    /// Scales a full-size packet count down in small mode.
    pub fn scale(&self, n: u64) -> u64 {
        if self.small {
            (n / 100).max(1_000)
        } else {
            n
        }
    }
}

/// Writes `value` as pretty JSON to `<out>/<name>.json`.
pub fn write_json<T: Serialize>(out: &Path, name: &str, value: &T) {
    std::fs::create_dir_all(out).expect("creating results directory");
    let path = out.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serializing results");
    std::fs::write(&path, json).expect("writing results JSON");
    eprintln!("wrote {}", path.display());
}

/// Renders an aligned text table, echoes it to stdout, and writes it to
/// `<out>/<name>.txt`.
pub fn write_table(out: &Path, name: &str, title: &str, header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut text = String::new();
    text.push_str(title);
    text.push('\n');
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    text.push_str(&fmt_row(&header_cells));
    text.push('\n');
    text.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    text.push('\n');
    for row in rows {
        text.push_str(&fmt_row(row));
        text.push('\n');
    }
    print!("{text}");
    std::io::stdout().flush().ok();

    std::fs::create_dir_all(out).expect("creating results directory");
    let path = out.join(format!("{name}.txt"));
    std::fs::write(&path, &text).expect("writing results table");
    eprintln!("wrote {}", path.display());
}

/// Formats a fraction as the paper prints drop rates (`46.5%`).
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// An ASCII sparkline for quick visual inspection of a time series.
pub fn sparkline(counts: &[u64], buckets: usize) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if counts.is_empty() {
        return String::new();
    }
    let chunk = counts.len().div_ceil(buckets);
    let sums: Vec<u64> = counts
        .chunks(chunk)
        .map(|c| c.iter().sum::<u64>())
        .collect();
    let max = sums.iter().copied().max().unwrap_or(1).max(1);
    sums.iter()
        .map(|&s| GLYPHS[((s * 7) / max) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(0.465), "46.5%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn sparkline_scales_to_buckets() {
        let s = sparkline(&[0, 0, 0, 0, 10, 10, 10, 10], 4);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn tables_render_aligned() {
        let dir = std::env::temp_dir().join("wirecap-bench-test");
        write_table(
            &dir,
            "t",
            "Test",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()]],
        );
        let text = std::fs::read_to_string(dir.join("t.txt")).unwrap();
        assert!(text.contains("a  bbbb"));
        assert!(text.contains("1     2"));
    }
}
