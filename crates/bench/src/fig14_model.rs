//! The Fig. 14 scalability model.
//!
//! Fig. 14 runs two NICs at wire rate, each packet received *and*
//! forwarded, with x = 0 — there is no per-packet application work, so
//! the binding resources are (1) the shared system bus and (2) raw
//! per-core packet touch rate. A per-packet discrete simulation of
//! 2 × 10⁹ arrivals would add nothing over rate arithmetic here, so this
//! experiment uses a calibrated fluid model (see DESIGN.md §4.1's
//! substitution table):
//!
//! * **Bus stage** — usable capacity [`BUS_CAPACITY_BPS`]; every packet
//!   costs its payload twice (DMA in + DMA out) plus a per-engine
//!   transaction overhead (descriptor fetch/write-back, doorbells).
//!   WireCAP additionally pays chunk-control traffic, and — only when the
//!   bus is already contended — page-walk traffic proportional to its
//!   pool footprint (the §5a "big-memory" cost: WireCAP-A-(256,500) on
//!   6 queues/NIC maps ~1.5 GiB of pool).
//! * **CPU stage** — each core forwards at most [`AppModel::rate_pps`]
//!   (x = 0, forward): ≈ 12 Mp/s. Queue loads use the real Toeplitz
//!   shares of the wire-rate generator's flow population. DNA cores
//!   saturate independently; WireCAP pools surplus across the buddy
//!   group at the offload penalty.

use engines::AppModel;
use nicsim::rss::Rss;
use sim::time::wire_rate_pps;
use sim::CpuModel;
use traffic::{TrafficSource, WireRateGen};
use wirecap::WireCapConfig;

/// Usable system-bus capacity in bytes/s (PCIe Gen-3 x8 pair on one NUMA
/// node, after transaction-layer efficiency).
pub const BUS_CAPACITY_BPS: f64 = 7.0e9;

/// Per-packet bus transaction overhead for DNA (descriptor fetch +
/// write-back + amortized doorbell), in bytes, covering RX and TX.
pub const DNA_PKT_OVERHEAD: f64 = 128.0;

/// WireCAP's per-packet overhead: DNA's plus chunk-control traffic
/// (capture/recycle metadata and segment re-arm writes, amortized over M
/// packets per chunk).
pub const WIRECAP_PKT_OVERHEAD: f64 = 134.0;

/// Page-walk bus bytes per packet per GiB of mapped pool, charged only
/// when the bus is contended (§5a: "a 'big-memory' application typically
/// pays a high cost for page-based virtual memory").
pub const PAGEWALK_BYTES_PER_GB: f64 = 24.0;

/// Extra per-packet application cycles under WireCAP: the user-mode
/// library iterates chunk cells through the work-queue abstraction,
/// slightly costlier than DNA's raw ring walk. Only visible when a
/// single core must sustain full wire rate (queues/NIC = 1).
pub const WIRECAP_APP_EXTRA_CYCLES: f64 = 20.0;

/// Engine choices Fig. 14 compares.
#[derive(Debug, Clone, Copy)]
pub enum Fig14Engine {
    /// DNA baseline.
    Dna,
    /// WireCAP advanced mode with the given (M, R, T).
    WireCapA(WireCapConfig),
}

impl Fig14Engine {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Fig14Engine::Dna => "DNA".into(),
            Fig14Engine::WireCapA(cfg) => cfg.name(),
        }
    }
}

/// One Fig. 14 operating point.
#[derive(Debug, Clone, Copy)]
pub struct OperatingPoint {
    /// Frame length in bytes, FCS included (the paper uses 64 and 100).
    pub frame_len: u16,
    /// Receive queues per NIC (1..=6).
    pub queues_per_nic: usize,
}

/// Predicted overall drop rate for an engine at an operating point.
pub fn drop_rate(engine: Fig14Engine, pt: OperatingPoint) -> f64 {
    let lambda_nic = wire_rate_pps(usize::from(pt.frame_len), 10.0);
    let lambda_total = 2.0 * lambda_nic;
    let l = f64::from(pt.frame_len);

    // --- Bus stage -------------------------------------------------
    let (ovh, pool_gb) = match engine {
        Fig14Engine::Dna => (DNA_PKT_OVERHEAD, 0.0),
        Fig14Engine::WireCapA(cfg) => (
            WIRECAP_PKT_OVERHEAD,
            // Pools on both NICs.
            2.0 * pt.queues_per_nic as f64 * cfg.pool_bytes() as f64 / 1e9,
        ),
    };
    let base_demand = lambda_total * (2.0 * l + ovh);
    let bus_served = if base_demand <= BUS_CAPACITY_BPS {
        1.0
    } else {
        // Contended: page-walk traffic now competes too.
        let demand = lambda_total * (2.0 * l + ovh + PAGEWALK_BYTES_PER_GB * pool_gb);
        BUS_CAPACITY_BPS / demand
    };

    // --- CPU stage (per NIC; both NICs are symmetric) ---------------
    let base_mu = AppModel {
        cpu: CpuModel::default(),
        x: 0,
        forward: true,
    }
    .rate_pps();
    let mu = match engine {
        Fig14Engine::Dna => base_mu,
        Fig14Engine::WireCapA(_) => {
            let cpu = CpuModel::default();
            1e9 / (1e9 / base_mu + WIRECAP_APP_EXTRA_CYCLES / cpu.freq_ghz)
        }
    };
    let shares = rss_shares(pt.queues_per_nic);
    let loads: Vec<f64> = shares.iter().map(|s| lambda_nic * s * bus_served).collect();
    let processed: f64 = match engine {
        Fig14Engine::Dna => loads.iter().map(|&l| l.min(mu)).sum(),
        Fig14Engine::WireCapA(cfg) => {
            // Buddy-group pooling: home cores first, then spare capacity
            // absorbs surplus at the offload penalty.
            let home: f64 = loads.iter().map(|&l| l.min(mu)).sum();
            let surplus: f64 = loads.iter().map(|&l| (l - mu).max(0.0)).sum();
            let spare: f64 = loads
                .iter()
                .map(|&l| (mu - l).max(0.0) * cfg.offload_penalty)
                .sum();
            home + surplus.min(spare)
        }
    };
    let offered_per_nic = lambda_nic;
    let delivered_per_nic = processed.min(offered_per_nic * bus_served);
    (1.0 - delivered_per_nic / offered_per_nic).max(0.0)
}

/// Per-queue traffic shares of the wire-rate generator's flow population
/// under real Toeplitz RSS.
pub fn rss_shares(queues: usize) -> Vec<f64> {
    let gen = WireRateGen::at_wire_rate(1, 64, 64);
    let rss = Rss::new(queues);
    let mut counts = vec![0usize; queues];
    for f in gen.flows() {
        counts[rss.steer(f)] += 1;
    }
    let total: usize = counts.iter().sum();
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(len: u16, q: usize) -> OperatingPoint {
        OperatingPoint {
            frame_len: len,
            queues_per_nic: q,
        }
    }

    fn wc(r: usize) -> Fig14Engine {
        Fig14Engine::WireCapA(WireCapConfig::advanced(256, r, 0.6, 0))
    }

    /// Paper: "When the generators transmit 100-Byte packets … We did not
    /// observe any packet loss for WireCAP and DNA."
    #[test]
    fn hundred_byte_packets_are_lossless() {
        for q in 1..=6 {
            assert!(drop_rate(Fig14Engine::Dna, pt(100, q)) < 1e-9, "DNA q={q}");
            assert!(drop_rate(wc(100), pt(100, q)) < 1e-9, "WC-100 q={q}");
            assert!(drop_rate(wc(500), pt(100, q)) < 1e-9, "WC-500 q={q}");
        }
    }

    /// Paper: at 64 bytes "the experiment system bus becomes saturated,
    /// causing both DNA and WireCAP to suffer significant packet drops".
    #[test]
    fn sixty_four_byte_packets_drop_everywhere() {
        for q in 1..=6 {
            assert!(drop_rate(Fig14Engine::Dna, pt(64, q)) > 0.05, "DNA q={q}");
            assert!(drop_rate(wc(100), pt(64, q)) > 0.05, "WC q={q}");
        }
    }

    /// Paper: "WireCAP suffers a higher packet drop rate than DNA @
    /// queues/NIC=1", and the gap narrows as queues are added.
    #[test]
    fn wirecap_worse_at_one_queue_then_narrows() {
        let gap_1 = drop_rate(wc(100), pt(64, 1)) - drop_rate(Fig14Engine::Dna, pt(64, 1));
        let gap_6 = drop_rate(wc(100), pt(64, 6)) - drop_rate(Fig14Engine::Dna, pt(64, 6));
        assert!(gap_1 > 0.0, "gap@1 = {gap_1}");
        assert!(gap_6 <= gap_1 + 1e-9, "gap@6 = {gap_6} vs gap@1 = {gap_1}");
    }

    /// Paper: "WireCAP-A-(256,500,60%) performs poorly @ queues/NIC=5 or
    /// 6 … requires larger memory use."
    #[test]
    fn big_pool_degrades_at_many_queues() {
        let small_pool = drop_rate(wc(100), pt(64, 6));
        let big_pool = drop_rate(wc(500), pt(64, 6));
        assert!(
            big_pool > small_pool + 0.05,
            "big {big_pool} vs small {small_pool}"
        );
        // At one queue per NIC the two pools behave similarly.
        let d1 = (drop_rate(wc(500), pt(64, 1)) - drop_rate(wc(100), pt(64, 1))).abs();
        assert!(d1 < 0.05, "diff@1 = {d1}");
    }

    /// Drops decline from the 1-queue CPU bottleneck as queues are added.
    #[test]
    fn one_queue_is_cpu_bound() {
        let d1 = drop_rate(Fig14Engine::Dna, pt(64, 1));
        let d2 = drop_rate(Fig14Engine::Dna, pt(64, 2));
        assert!(d1 > d2, "{d1} vs {d2}");
    }

    #[test]
    fn shares_sum_to_one() {
        for q in 1..=6 {
            let s = rss_shares(q);
            assert_eq!(s.len(), q);
            assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
