//! Multi-core delivery scaling: work-stealing consumer pools against
//! the one-consumer-per-queue baseline (`fig_scaling`).
//!
//! The workload is the paper's problem case: RSS concentrates a single
//! heavy flow onto one receive queue, and the consumer is *heavy* — a
//! per-packet CPU fold plus a blocking per-chunk I/O stage (modeled as
//! a bounded sleep, standing in for the `write(2)` the capdisk writer
//! issues per batch, or any downstream RPC). With one consumer bound
//! to each queue, the hot queue's delivery rate is capped at
//! M / io-latency no matter how many queues the NIC has: the blocking
//! stage serializes, and the other consumers sit idle busy-yielding. A
//! [`wirecap::ConsumerPool`] breaks the cap: idle workers steal sealed
//! chunks from the hot queue's worker and overlap their blocking
//! stages, so aggregate pps scales with the worker count (toward
//! linear, until capture itself becomes the bottleneck) — and workers
//! with nothing to steal park on the delivery gate instead of burning
//! the cycles the busy threads need.
//!
//! Every data point asserts the engine's conservation laws before
//! reporting a rate — a scaling number from a run that lost packets or
//! leaked chunk slots would be meaningless:
//!
//! * `delivered + delivery_drop == captured`
//! * `captured + capture_drop == offered`
//! * Σ `steal_in_chunks` == Σ `steal_out_chunks`
//! * Σ `recycled_chunks` == Σ `sealed_chunks`

use netproto::{FlowKey, Packet, PacketBuilder};
use nicsim::livenic::LiveNic;
use serde::Serialize;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use telemetry::EngineSnapshot;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::WireCapConfig;

/// Payload bytes per packet.
pub const FRAME: usize = 128;

/// Per-packet application work: passes of a xor-fold over the payload.
/// Heavy enough that delivery (not capture) is the bottleneck, as in
/// the paper's x = 300 heavy-consumer runs.
pub const WORK_PASSES: usize = 8;

/// Blocking I/O latency per consumed chunk, in microseconds: the
/// synchronous stage of the consumer (a batch `write(2)`, a downstream
/// call). One consumer serializes these; pool workers overlap them.
pub const CHUNK_IO_US: u64 = 100;

/// One measured configuration of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingPoint {
    /// `"per_queue"` (one `LiveConsumer` thread per queue), `"pooled"`
    /// (one work-stealing `ConsumerPool` over all queues),
    /// `"concurrent"` (COREC-style claim-based pool, DESIGN.md §4.12),
    /// or `"concurrent_ordered"` (same, with in-order delivery).
    pub mode: &'static str,
    /// Receive queues on the NIC.
    pub queues: usize,
    /// Delivery threads (baseline: always equal to `queues`).
    pub workers: usize,
    /// Packets offered (and, conservation-checked, delivered).
    pub packets: u64,
    /// Wall-clock seconds from first injection to delivery completion.
    pub elapsed_s: f64,
    /// Aggregate delivered packets per second.
    pub pps: f64,
    /// Chunks that moved between pool workers by stealing.
    pub stolen_chunks: u64,
    /// Times pool workers parked on the delivery gate.
    pub worker_parks: u64,
    /// Claim CAS races lost by concurrent-mode workers (0 elsewhere).
    pub claim_contention: u64,
}

/// The per-packet work function: `WORK_PASSES` xor-folds over the
/// payload. Returns a fold the caller must keep live so the work is
/// not optimized away.
#[inline]
pub fn packet_work(data: &[u8]) -> u64 {
    let mut acc = 0u64;
    for pass in 0..WORK_PASSES {
        for (i, b) in data.iter().enumerate() {
            acc = acc
                .rotate_left(7)
                .wrapping_add(u64::from(*b) ^ ((pass + i) as u64));
        }
    }
    acc
}

fn engine_config() -> WireCapConfig {
    let mut cfg = WireCapConfig::basic(64, 32, 0);
    cfg.capture_timeout_ns = 2_000_000;
    cfg
}

/// Prebuilds the skewed traffic: one UDP flow, so RSS lands every
/// packet on a single queue regardless of the queue count.
fn skewed_traffic(n: u64) -> Vec<Packet> {
    let mut b = PacketBuilder::new();
    let flow = FlowKey::udp(
        Ipv4Addr::new(10, 5, 5, 5),
        5_555,
        Ipv4Addr::new(131, 225, 2, 1),
        443,
    );
    (0..n)
        .map(|i| b.build_packet(i * 1_000, &flow, FRAME).unwrap())
        .collect()
}

/// Asserts the engine's conservation laws over a finished run's
/// snapshot (shared with the `latency` sweep — every reported data
/// point passes through here first).
pub fn assert_conserved(snap: &EngineSnapshot, offered: u64) {
    let captured: u64 = snap.queues.iter().map(|q| q.captured_packets).sum();
    let delivered: u64 = snap.queues.iter().map(|q| q.delivered_packets).sum();
    let delivery_dropped: u64 = snap.queues.iter().map(|q| q.delivery_drop_packets).sum();
    assert_eq!(
        delivered + delivery_dropped,
        captured,
        "packets lost between capture and delivery"
    );
    let capture_dropped: u64 = snap.queues.iter().map(|q| q.capture_drop_packets).sum();
    assert_eq!(
        captured + capture_dropped,
        offered,
        "captured + dropped must cover every offered packet"
    );
    let steal_in: u64 = snap.queues.iter().map(|q| q.steal_in_chunks).sum();
    let steal_out: u64 = snap.queues.iter().map(|q| q.steal_out_chunks).sum();
    assert_eq!(steal_in, steal_out, "steal in/out drifted");
    let sealed: u64 = snap.queues.iter().map(|q| q.sealed_chunks).sum();
    let recycled: u64 = snap.queues.iter().map(|q| q.recycled_chunks).sum();
    assert_eq!(recycled, sealed, "chunk slots leaked");
}

/// Runs the per-queue baseline: one `LiveConsumer` thread bound to each
/// queue, exactly the delivery topology every pre-pool example used.
pub fn baseline_point(queues: usize, packets: u64) -> ScalingPoint {
    let traffic = skewed_traffic(packets);
    let nic = LiveNic::new(queues, 4096);
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(engine_config())
        .groups(BuddyGroups::single(queues))
        .start();
    let start = Instant::now();
    let consumers: Vec<_> = (0..queues)
        .map(|q| {
            let mut c = engine.consumer(q);
            std::thread::spawn(move || {
                let mut acc = 0u64;
                let mut delivered = 0u64;
                while let Some(chunk) = c.next_chunk() {
                    for p in c.view(&chunk).iter() {
                        acc ^= packet_work(p.data);
                    }
                    std::thread::sleep(std::time::Duration::from_micros(CHUNK_IO_US));
                    delivered += chunk.len() as u64;
                    c.recycle(chunk);
                }
                (delivered, acc)
            })
        })
        .collect();
    for pkt in &traffic {
        while nic.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
    }
    nic.stop();
    let delivered: u64 = consumers
        .into_iter()
        .map(|h| h.join().expect("consumer panicked").0)
        .sum();
    let elapsed = start.elapsed().as_secs_f64();
    let observer = engine.observer();
    engine.shutdown();
    let snap = observer.snapshot();
    assert_conserved(&snap, packets);
    assert_eq!(delivered, packets, "baseline delivered every packet");
    ScalingPoint {
        mode: "per_queue",
        queues,
        workers: queues,
        packets,
        elapsed_s: elapsed,
        pps: delivered as f64 / elapsed,
        stolen_chunks: 0,
        worker_parks: 0,
        claim_contention: 0,
    }
}

/// Runs the pooled configuration: a `ConsumerPool` of `workers` threads
/// over all queues, with stealing and adaptive parking.
pub fn pooled_point(queues: usize, workers: usize, packets: u64) -> ScalingPoint {
    pool_point_with("pooled", engine_config(), queues, workers, packets)
}

/// Runs the concurrent-claim configuration (DESIGN.md §4.12): every
/// pool worker claims sealed chunks straight off the same queues'
/// shared claim streams, so even a single hot queue is drained by all
/// `workers` threads at once. `in_order` additionally re-serializes
/// delivery per home queue through the bounded reorder buffer.
pub fn concurrent_point(
    queues: usize,
    workers: usize,
    packets: u64,
    in_order: bool,
) -> ScalingPoint {
    let mut cfg = engine_config();
    cfg.concurrent_queue = true;
    cfg.in_order = in_order;
    let mode = if in_order {
        "concurrent_ordered"
    } else {
        "concurrent"
    };
    pool_point_with(mode, cfg, queues, workers, packets)
}

fn pool_point_with(
    mode: &'static str,
    cfg: WireCapConfig,
    queues: usize,
    workers: usize,
    packets: u64,
) -> ScalingPoint {
    let traffic = skewed_traffic(packets);
    let nic = LiveNic::new(queues, 4096);
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(BuddyGroups::single(queues))
        .start();
    let group = wirecap::BuddyGroup::all(queues);
    let acc = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let pool = {
        let acc = Arc::clone(&acc);
        engine.consumer_pool(&group, workers, move |d| {
            let mut local = 0u64;
            for p in d.view().iter() {
                local ^= packet_work(p.data);
            }
            std::thread::sleep(std::time::Duration::from_micros(CHUNK_IO_US));
            acc.fetch_add(local, Ordering::Relaxed);
        })
    };
    for pkt in &traffic {
        while nic.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
    }
    nic.stop();
    let reports = pool.join();
    let elapsed = start.elapsed().as_secs_f64();
    let observer = engine.observer();
    engine.shutdown();
    let snap = observer.snapshot();
    assert_conserved(&snap, packets);
    let delivered: u64 = reports.iter().map(|r| r.packets).sum();
    assert_eq!(delivered, packets, "pool delivered every packet");
    ScalingPoint {
        mode,
        queues,
        workers,
        packets,
        elapsed_s: elapsed,
        pps: delivered as f64 / elapsed,
        stolen_chunks: reports.iter().map(|r| r.stolen_chunks).sum(),
        worker_parks: reports.iter().map(|r| r.parks).sum(),
        claim_contention: snap.queues.iter().map(|q| q.claim_contention).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_conserve_and_report_rates() {
        let b = baseline_point(2, 20_000);
        assert_eq!(b.packets, 20_000);
        assert!(b.pps > 0.0);
        let p = pooled_point(2, 2, 20_000);
        assert_eq!(p.packets, 20_000);
        assert!(p.pps > 0.0);
    }

    #[test]
    fn concurrent_modes_conserve_and_report_rates() {
        let c = concurrent_point(1, 2, 20_000, false);
        assert_eq!(c.packets, 20_000);
        assert!(c.pps > 0.0);
        assert_eq!(c.mode, "concurrent");
        assert_eq!(c.stolen_chunks, 0, "claim mode never steals");
        let o = concurrent_point(1, 2, 20_000, true);
        assert_eq!(o.packets, 20_000);
        assert!(o.pps > 0.0);
        assert_eq!(o.mode, "concurrent_ordered");
    }
}
