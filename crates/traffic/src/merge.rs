//! Merging multiple arrival streams into one timeline.
//!
//! Multi-NIC experiments (the paper's scalability setup has two NICs,
//! each with its own generator) need a single time-ordered stream over
//! several sources. [`MergedSource`] performs the deterministic k-way
//! merge (ties broken by source index, via the simulation kernel's
//! FIFO-stable event queue) and re-interns the flow tables so flow ids
//! stay unambiguous.

use crate::source::{Arrival, TrafficSource};
use netproto::FlowKey;
use sim::{EventQueue, SimTime};

/// A deterministic k-way merge of traffic sources.
pub struct MergedSource<'a> {
    sources: Vec<Box<dyn TrafficSource + 'a>>,
    /// Flow-id offset of each source in the merged flow table.
    offsets: Vec<u32>,
    flows: Vec<FlowKey>,
    /// Heap of (next arrival time, source index); the arrival itself is
    /// buffered per source.
    heap: EventQueue<usize>,
    buffered: Vec<Option<Arrival>>,
    remaining_hint: Option<u64>,
}

impl<'a> MergedSource<'a> {
    /// Merges the given sources. Each source's arrivals must be
    /// time-ordered; the merged stream then is too.
    pub fn new(mut sources: Vec<Box<dyn TrafficSource + 'a>>) -> Self {
        assert!(!sources.is_empty(), "need at least one source");
        let mut offsets = Vec::with_capacity(sources.len());
        let mut flows = Vec::new();
        for s in &sources {
            offsets.push(flows.len() as u32);
            flows.extend_from_slice(s.flows());
        }
        let remaining_hint = sources
            .iter()
            .map(|s| s.len_hint())
            .try_fold(0u64, |acc, h| h.map(|h| acc + h));
        let mut heap = EventQueue::new();
        let mut buffered: Vec<Option<Arrival>> = Vec::with_capacity(sources.len());
        for (i, s) in sources.iter_mut().enumerate() {
            let first = s.next_arrival();
            if let Some(a) = &first {
                heap.push(SimTime(a.ts_ns), i);
            }
            buffered.push(first);
        }
        MergedSource {
            sources,
            offsets,
            flows,
            heap,
            buffered,
            remaining_hint,
        }
    }
}

impl TrafficSource for MergedSource<'_> {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let (_, i) = self.heap.pop()?;
        let mut out = self.buffered[i].take().expect("buffered arrival present");
        out.flow += self.offsets[i];
        // Refill from that source.
        if let Some(next) = self.sources[i].next_arrival() {
            self.heap.push(SimTime(next.ts_ns), i);
            self.buffered[i] = Some(next);
        }
        if let Some(h) = &mut self.remaining_hint {
            *h = h.saturating_sub(1);
        }
        Some(out)
    }

    fn flows(&self) -> &[FlowKey] {
        &self.flows
    }

    fn len_hint(&self) -> Option<u64> {
        self.remaining_hint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WireRateGen;

    fn drain(mut s: impl TrafficSource) -> Vec<Arrival> {
        let mut v = Vec::new();
        while let Some(a) = s.next_arrival() {
            v.push(a);
        }
        v
    }

    #[test]
    fn merge_is_time_ordered_and_complete() {
        let a = WireRateGen::new(100, 64, 1e6, 4); // every 1 µs
        let b = WireRateGen::new(50, 100, 4e5, 4).starting_at(300); // every 2.5 µs
        let merged = MergedSource::new(vec![Box::new(a), Box::new(b)]);
        assert_eq!(merged.len_hint(), Some(150));
        let out = drain(merged);
        assert_eq!(out.len(), 150);
        assert!(out.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(out.iter().filter(|a| a.len == 64).count(), 100);
        assert_eq!(out.iter().filter(|a| a.len == 100).count(), 50);
    }

    #[test]
    fn flow_ids_are_offset_per_source() {
        let a = WireRateGen::new(4, 64, 1e6, 4);
        let b = WireRateGen::new(4, 64, 1e6, 4).starting_at(100);
        let merged = MergedSource::new(vec![Box::new(a), Box::new(b)]);
        assert_eq!(merged.flows().len(), 8);
        let out = drain(MergedSource::new(vec![
            Box::new(WireRateGen::new(4, 64, 1e6, 4)),
            Box::new(WireRateGen::new(4, 64, 1e6, 4).starting_at(100)),
        ]));
        // Source B's flows reference the second half of the table.
        assert!(out.iter().any(|a| a.flow >= 4));
        assert!(out.iter().all(|a| a.flow < 8));
    }

    #[test]
    fn ties_resolve_deterministically() {
        // Identical timelines: ties must always resolve source-0-first.
        let out1 = drain(MergedSource::new(vec![
            Box::new(WireRateGen::new(10, 64, 1e6, 1)),
            Box::new(WireRateGen::new(10, 100, 1e6, 1)),
        ]));
        let out2 = drain(MergedSource::new(vec![
            Box::new(WireRateGen::new(10, 64, 1e6, 1)),
            Box::new(WireRateGen::new(10, 100, 1e6, 1)),
        ]));
        let lens1: Vec<u16> = out1.iter().map(|a| a.len).collect();
        let lens2: Vec<u16> = out2.iter().map(|a| a.len).collect();
        assert_eq!(lens1, lens2);
        assert_eq!(lens1[0], 64, "tie must go to source 0");
    }

    #[test]
    fn single_source_passthrough() {
        let out = drain(MergedSource::new(vec![Box::new(WireRateGen::new(
            7, 64, 1e6, 2,
        ))]));
        assert_eq!(out.len(), 7);
    }
}
