//! Fixed-size packets at wire rate.
//!
//! The paper's basic-mode and scalability experiments transmit "P 64-Byte
//! packets at the wire rate (14.88 million p/s)" (§4). [`WireRateGen`]
//! produces exactly that arrival process without materializing a trace:
//! arrival *i* occurs at `i / rate` seconds, packets cycle over a small
//! set of UDP flows (so multi-queue configurations exercise RSS spreading
//! as the hardware generator's round-robin source addresses would).

use crate::source::{Arrival, TrafficSource};
use netproto::FlowKey;
use sim::time::wire_rate_pps;
use std::net::Ipv4Addr;

/// A constant-rate fixed-size packet generator.
#[derive(Debug, Clone)]
pub struct WireRateGen {
    flows: Vec<FlowKey>,
    count: u64,
    emitted: u64,
    gap_num: u64,
    gap_den: u64,
    frame_len: u16,
    start_ns: u64,
}

impl WireRateGen {
    /// `count` frames of `frame_len` bytes (FCS included) at `pps`
    /// packets per second, cycling over `n_flows` distinct UDP flows.
    pub fn new(count: u64, frame_len: u16, pps: f64, n_flows: usize) -> Self {
        assert!(pps > 0.0 && n_flows > 0 && frame_len >= 64);
        let flows = (0..n_flows)
            .map(|i| {
                FlowKey::udp(
                    Ipv4Addr::new(198, 18, (i >> 8) as u8, (i & 0xff) as u8),
                    10_000 + i as u16,
                    Ipv4Addr::new(131, 225, 107, 1),
                    9_000,
                )
            })
            .collect();
        // Represent the inter-arrival gap as a rational (ns) to avoid
        // cumulative floating-point drift over 10^9 packets:
        // gap = 1e9/pps = gap_num/gap_den with gap_den = round(pps).
        let gap_den = pps.round() as u64;
        WireRateGen {
            flows,
            count,
            emitted: 0,
            gap_num: 1_000_000_000,
            gap_den,
            frame_len,
            start_ns: 0,
        }
    }

    /// Full 10 GbE wire rate for the given frame length.
    pub fn at_wire_rate(count: u64, frame_len: u16, n_flows: usize) -> Self {
        Self::new(
            count,
            frame_len,
            wire_rate_pps(usize::from(frame_len), 10.0),
            n_flows,
        )
    }

    /// The paper's canonical workload: P × 64-byte frames at 14.88 Mp/s.
    pub fn paper_burst(count: u64) -> Self {
        Self::at_wire_rate(count, 64, 16)
    }

    /// Shifts all arrivals by a start offset (for staggered multi-NIC runs).
    pub fn starting_at(mut self, start_ns: u64) -> Self {
        self.start_ns = start_ns;
        self
    }

    /// The generator's packet rate in packets/s.
    pub fn rate_pps(&self) -> f64 {
        self.gap_den as f64
    }
}

impl TrafficSource for WireRateGen {
    fn next_arrival(&mut self) -> Option<Arrival> {
        if self.emitted >= self.count {
            return None;
        }
        let i = self.emitted;
        self.emitted += 1;
        Some(Arrival {
            // floor(i * 1e9 / rate): exact integer arithmetic, no drift.
            ts_ns: self.start_ns + i * self.gap_num / self.gap_den,
            flow: (i % self.flows.len() as u64) as u32,
            len: self.frame_len,
        })
    }

    fn flows(&self) -> &[FlowKey] {
        &self.flows
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut g: WireRateGen) -> Vec<Arrival> {
        let mut v = Vec::new();
        while let Some(a) = g.next_arrival() {
            v.push(a);
        }
        v
    }

    #[test]
    fn paper_burst_rate_is_wire_rate() {
        let g = WireRateGen::paper_burst(1000);
        assert!((g.rate_pps() - 14_880_952.0).abs() < 2.0);
        let arrivals = drain(g);
        assert_eq!(arrivals.len(), 1000);
        // 1000 packets at 14.88 Mp/s span ~67.2 µs.
        let span = arrivals.last().unwrap().ts_ns;
        assert!((66_000..68_500).contains(&span), "span = {span}");
    }

    #[test]
    fn arrivals_are_monotonic_and_evenly_spaced() {
        let arrivals = drain(WireRateGen::new(100, 64, 1_000_000.0, 4));
        for (i, a) in arrivals.iter().enumerate() {
            assert_eq!(a.ts_ns, i as u64 * 1000);
            assert_eq!(a.len, 64);
        }
    }

    #[test]
    fn no_drift_over_many_packets() {
        // After exactly `rate` packets, one full second must have elapsed.
        let rate = 14_880_952u64;
        let mut g = WireRateGen::new(rate + 1, 64, rate as f64, 1);
        let mut last = g.next_arrival().unwrap();
        for _ in 0..rate {
            last = g.next_arrival().unwrap();
        }
        assert_eq!(last.ts_ns, 1_000_000_000);
    }

    #[test]
    fn flows_cycle() {
        let arrivals = drain(WireRateGen::new(8, 64, 1e6, 4));
        let ids: Vec<u32> = arrivals.iter().map(|a| a.flow).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn start_offset_shifts_timeline() {
        let arrivals = drain(WireRateGen::new(3, 64, 1e6, 1).starting_at(500));
        assert_eq!(
            arrivals.iter().map(|a| a.ts_ns).collect::<Vec<_>>(),
            vec![500, 1500, 2500]
        );
    }

    #[test]
    fn len_hint_matches() {
        assert_eq!(WireRateGen::paper_burst(77).len_hint(), Some(77));
    }
}
