//! The arrival-stream interface between workloads and the NIC model.

use netproto::FlowKey;

/// One packet arrival on the wire.
///
/// Arrivals carry a flow *id* rather than the full 5-tuple: a workload
/// interns its flows once (see [`TrafficSource::flows`]) so per-packet
/// processing — RSS hashing in particular — can be cached per flow. `len`
/// is the Ethernet frame length **including FCS** (the convention under
/// which a minimum frame is 64 bytes and 10 GbE carries 14.88 Mp/s of
/// them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival timestamp (nanoseconds from workload start).
    pub ts_ns: u64,
    /// Index into the workload's flow table.
    pub flow: u32,
    /// Frame length in bytes, FCS included.
    pub len: u16,
}

/// A stream of packet arrivals plus the flow table they reference.
///
/// Implementations must yield arrivals in non-decreasing timestamp order;
/// the experiment harness asserts this in debug builds.
pub trait TrafficSource {
    /// Takes the next arrival, or `None` at end of workload.
    fn next_arrival(&mut self) -> Option<Arrival>;

    /// Appends up to `max` arrivals to `out`, returning how many were
    /// produced; `0` means end of workload. The default forwards to
    /// [`TrafficSource::next_arrival`]; sources backed by contiguous
    /// records override it to emit a whole slice per call, which is what
    /// lets the experiment harness feed engines in batches.
    fn next_batch(&mut self, out: &mut Vec<Arrival>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.next_arrival() {
                Some(a) => {
                    out.push(a);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// The interned flow table; `Arrival::flow` indexes into it.
    fn flows(&self) -> &[FlowKey];

    /// Total packets this source will emit, when known in advance.
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    struct TwoPackets {
        emitted: usize,
        flows: Vec<FlowKey>,
    }

    impl TrafficSource for TwoPackets {
        fn next_arrival(&mut self) -> Option<Arrival> {
            if self.emitted >= 2 {
                return None;
            }
            self.emitted += 1;
            Some(Arrival {
                ts_ns: self.emitted as u64 * 100,
                flow: 0,
                len: 64,
            })
        }

        fn flows(&self) -> &[FlowKey] {
            &self.flows
        }
    }

    #[test]
    fn default_batch_forwards_to_next_arrival() {
        let mut src = TwoPackets {
            emitted: 0,
            flows: vec![FlowKey::udp(
                Ipv4Addr::new(1, 1, 1, 1),
                1,
                Ipv4Addr::new(2, 2, 2, 2),
                2,
            )],
        };
        let mut out = Vec::new();
        assert_eq!(src.next_batch(&mut out, 10), 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].ts_ns, 100);
        assert_eq!(src.next_batch(&mut out, 10), 0);
    }

    #[test]
    fn trait_object_usable() {
        let mut src: Box<dyn TrafficSource> = Box::new(TwoPackets {
            emitted: 0,
            flows: vec![FlowKey::udp(
                Ipv4Addr::new(1, 1, 1, 1),
                1,
                Ipv4Addr::new(2, 2, 2, 2),
                2,
            )],
        });
        assert_eq!(src.len_hint(), None);
        let a = src.next_arrival().unwrap();
        assert_eq!(a.ts_ns, 100);
        assert_eq!(src.flows().len(), 1);
        assert!(src.next_arrival().is_some());
        assert!(src.next_arrival().is_none());
    }
}
