//! Trace replay "at the speed exactly as recorded".
//!
//! The paper's traffic generator "replays captured traffic at the speed
//! exactly as recorded"; [`TraceCursor`] is that generator: it walks a
//! [`Trace`] emitting arrivals at their recorded timestamps, optionally
//! scaled by a speed factor (×2 = twice as fast) or looped back-to-back.

use crate::source::{Arrival, TrafficSource};
use crate::trace::Trace;
use netproto::FlowKey;

/// A replaying cursor over a trace.
#[derive(Debug, Clone)]
pub struct TraceCursor<'t> {
    trace: &'t Trace,
    pos: usize,
    speed: f64,
    loops_left: u32,
    loop_offset_ns: u64,
}

impl<'t> TraceCursor<'t> {
    /// Replays `trace` once at recorded speed.
    pub fn new(trace: &'t Trace) -> Self {
        TraceCursor {
            trace,
            pos: 0,
            speed: 1.0,
            loops_left: 0,
            loop_offset_ns: 0,
        }
    }

    /// Replays at `speed`× the recorded rate (2.0 = twice as fast).
    pub fn with_speed(mut self, speed: f64) -> Self {
        assert!(speed > 0.0);
        self.speed = speed;
        self
    }

    /// Replays the trace `n` times back-to-back.
    pub fn looped(mut self, n: u32) -> Self {
        assert!(n >= 1);
        self.loops_left = n - 1;
        self
    }

    fn scaled(&self, ts_ns: u64) -> u64 {
        (ts_ns as f64 / self.speed) as u64
    }
}

impl TrafficSource for TraceCursor<'_> {
    fn next_arrival(&mut self) -> Option<Arrival> {
        if self.pos >= self.trace.len() {
            if self.loops_left == 0 || self.trace.is_empty() {
                return None;
            }
            self.loops_left -= 1;
            // Next pass starts one mean gap after the last packet.
            let span = self.scaled(self.trace.duration_ns()) + 1;
            self.loop_offset_ns += span;
            self.pos = 0;
        }
        let r = self.trace.records()[self.pos];
        self.pos += 1;
        Some(Arrival {
            ts_ns: self.loop_offset_ns + self.scaled(r.ts_ns),
            flow: r.flow,
            len: r.len,
        })
    }

    /// Batched replay: copies whole record runs (bounded by `max` and by
    /// loop boundaries) instead of stepping one arrival at a time.
    fn next_batch(&mut self, out: &mut Vec<Arrival>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            if self.pos >= self.trace.len() {
                if self.loops_left == 0 || self.trace.is_empty() {
                    break;
                }
                self.loops_left -= 1;
                let span = self.scaled(self.trace.duration_ns()) + 1;
                self.loop_offset_ns += span;
                self.pos = 0;
            }
            let take = (self.trace.len() - self.pos).min(max - n);
            for r in &self.trace.records()[self.pos..self.pos + take] {
                out.push(Arrival {
                    ts_ns: self.loop_offset_ns + self.scaled(r.ts_ns),
                    flow: r.flow,
                    len: r.len,
                });
            }
            self.pos += take;
            n += take;
        }
        n
    }

    fn flows(&self) -> &[FlowKey] {
        self.trace.flows()
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.trace.len() as u64 * (u64::from(self.loops_left) + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn trace() -> Trace {
        let flow = FlowKey::udp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2);
        Trace::new(
            vec![flow],
            vec![
                Arrival {
                    ts_ns: 100,
                    flow: 0,
                    len: 64,
                },
                Arrival {
                    ts_ns: 300,
                    flow: 0,
                    len: 64,
                },
                Arrival {
                    ts_ns: 1_000,
                    flow: 0,
                    len: 64,
                },
            ],
        )
    }

    fn drain(mut src: impl TrafficSource) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(a) = src.next_arrival() {
            out.push(a.ts_ns);
        }
        out
    }

    #[test]
    fn replays_at_recorded_speed() {
        let t = trace();
        assert_eq!(drain(TraceCursor::new(&t)), vec![100, 300, 1_000]);
    }

    #[test]
    fn speed_factor_compresses_time() {
        let t = trace();
        assert_eq!(
            drain(TraceCursor::new(&t).with_speed(2.0)),
            vec![50, 150, 500]
        );
    }

    #[test]
    fn looping_repeats_with_offset() {
        let t = trace();
        let ts = drain(TraceCursor::new(&t).looped(2));
        assert_eq!(ts.len(), 6);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
        assert_eq!(&ts[..3], &[100, 300, 1_000]);
        // Second pass preserves inter-packet spacing.
        assert_eq!(ts[4] - ts[3], 200);
        assert_eq!(ts[5] - ts[4], 700);
    }

    #[test]
    fn batched_replay_matches_single_stepping() {
        let t = trace();
        let single = drain(TraceCursor::new(&t).with_speed(2.0).looped(3));
        let mut cursor = TraceCursor::new(&t).with_speed(2.0).looped(3);
        let mut batched = Vec::new();
        // An awkward batch size that straddles loop boundaries.
        while cursor.next_batch(&mut batched, 2) > 0 {}
        let batched: Vec<u64> = batched.into_iter().map(|a| a.ts_ns).collect();
        assert_eq!(batched, single);
    }

    #[test]
    fn len_hint_accounts_for_loops() {
        let t = trace();
        assert_eq!(TraceCursor::new(&t).len_hint(), Some(3));
        assert_eq!(TraceCursor::new(&t).looped(3).len_hint(), Some(9));
    }
}
