//! # traffic — workload generation for the capture experiments
//!
//! The paper drives its experiments from two workloads:
//!
//! 1. a **captured border-router trace** ("5 million packets … approximately
//!    32 seconds", §2.2) replayed "at the speed exactly as recorded", used
//!    for the load-imbalance and advanced-mode experiments (Fig. 3,
//!    Table 1, Figs. 11–13);
//! 2. **fixed-size packets at wire rate** (64-byte frames at 14.88 Mp/s),
//!    used for the basic-mode and scalability experiments (Figs. 8–10, 14).
//!
//! We cannot ship Fermilab's trace, so [`synthetic`] builds a statistically
//! equivalent stand-in: heavy-tailed (bounded-Pareto) flow sizes, ON/OFF
//! bursty packet arrivals, a TCP-dominant protocol mix, and addresses drawn
//! from a 131.225.0.0/16-dominated population. What matters for the
//! reproduction is not byte-for-byte fidelity but that per-flow RSS
//! steering of the trace produces the paper's two phenomena — short-term
//! bursts and long-term queue skew (Fig. 3) — which the generator's tests
//! assert directly.
//!
//! All generators implement [`source::TrafficSource`], the arrival-stream
//! interface consumed by the NIC model, and are deterministic given a seed.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod import;
pub mod merge;
pub mod replay;
pub mod source;
pub mod synthetic;
pub mod trace;
pub mod wire_rate;

pub use import::{import, import_savefile, ImportReport};
pub use merge::MergedSource;
pub use replay::TraceCursor;
pub use source::{Arrival, TrafficSource};
pub use synthetic::{generate_border_trace, BorderTraceConfig};
pub use trace::{Trace, TraceRecord};
pub use wire_rate::WireRateGen;
