//! In-memory packet traces.

use crate::source::Arrival;
use netproto::{FlowKey, Packet, PacketBuilder};

/// One record of a trace: a packet arrival referencing an interned flow.
pub type TraceRecord = Arrival;

/// An in-memory trace: interned flows plus time-ordered arrival records.
///
/// This is the workload currency of the repository — the synthetic
/// border-router trace is a `Trace`, replay wraps a `Trace`, and a `Trace`
/// can be materialized to real packet bytes (for the pcap/BPF paths) or
/// consumed as pure arrivals (for the drop-rate simulations, where packet
/// contents don't matter but rates and flow identity do).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    flows: Vec<FlowKey>,
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates a trace from parts. Records must be time-ordered.
    pub fn new(flows: Vec<FlowKey>, records: Vec<TraceRecord>) -> Self {
        debug_assert!(records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        debug_assert!(records.iter().all(|r| (r.flow as usize) < flows.len()));
        Trace { flows, records }
    }

    /// The interned flow table.
    pub fn flows(&self) -> &[FlowKey] {
        &self.flows
    }

    /// The arrival records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Duration from first to last arrival, in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => b.ts_ns - a.ts_ns,
            _ => 0,
        }
    }

    /// Mean packet rate over the trace duration (packets/s).
    pub fn mean_rate_pps(&self) -> f64 {
        let d = self.duration_ns();
        if d == 0 {
            0.0
        } else {
            self.records.len() as f64 / (d as f64 / 1e9)
        }
    }

    /// Total frame bytes (FCS included, as recorded).
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.len)).sum()
    }

    /// Number of distinct flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Per-flow packet counts.
    pub fn flow_sizes(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.flows.len()];
        for r in &self.records {
            counts[r.flow as usize] += 1;
        }
        counts
    }

    /// Keeps only the first `n` records (used to scale experiments down).
    pub fn truncate(&mut self, n: usize) {
        self.records.truncate(n);
    }

    /// Materializes a record to real packet bytes.
    ///
    /// The rendered frame is the *captured* view: FCS stripped, so a
    /// 64-byte wire frame renders as 60 bytes, matching what a NIC
    /// delivers to host memory.
    pub fn render(&self, builder: &mut PacketBuilder, record: &TraceRecord) -> Packet {
        let captured_len = usize::from(record.len).saturating_sub(4).max(14);
        builder
            .build_packet(
                record.ts_ns,
                &self.flows[record.flow as usize],
                captured_len,
            )
            .expect("trace records always describe renderable flows")
    }

    /// Materializes the whole trace (intended for small traces; 5 M
    /// packets would allocate gigabytes).
    pub fn render_all(&self) -> Vec<Packet> {
        let mut b = PacketBuilder::new();
        self.records
            .iter()
            .map(|r| self.render(&mut b, r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn flow(i: u8) -> FlowKey {
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, i),
            1000 + u16::from(i),
            Ipv4Addr::new(8, 8, 8, 8),
            53,
        )
    }

    fn sample() -> Trace {
        Trace::new(
            vec![flow(1), flow(2)],
            vec![
                Arrival {
                    ts_ns: 0,
                    flow: 0,
                    len: 64,
                },
                Arrival {
                    ts_ns: 500,
                    flow: 1,
                    len: 1518,
                },
                Arrival {
                    ts_ns: 1_000_000_000,
                    flow: 0,
                    len: 64,
                },
            ],
        )
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.flow_count(), 2);
        assert_eq!(t.duration_ns(), 1_000_000_000);
        assert_eq!(t.total_bytes(), 64 + 1518 + 64);
        assert_eq!(t.flow_sizes(), vec![2, 1]);
        assert!((t.mean_rate_pps() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn render_strips_fcs() {
        let t = sample();
        let mut b = PacketBuilder::new();
        let p = t.render(&mut b, &t.records()[0]);
        assert_eq!(p.data.len(), 60); // 64 on the wire minus 4-byte FCS
        netproto::builder::validate_frame(&p.data).unwrap();
        let parsed = netproto::parse_frame(&p.data).unwrap();
        assert_eq!(parsed.flow.unwrap(), flow(1));
    }

    #[test]
    fn render_all_preserves_order_and_timestamps() {
        let t = sample();
        let pkts = t.render_all();
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].ts_ns, 0);
        assert_eq!(pkts[1].ts_ns, 500);
        assert_eq!(pkts[2].ts_ns, 1_000_000_000);
    }

    #[test]
    fn truncate_limits_records() {
        let mut t = sample();
        t.truncate(1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_trace_is_well_behaved() {
        let t = Trace::default();
        assert_eq!(t.duration_ns(), 0);
        assert_eq!(t.mean_rate_pps(), 0.0);
        assert!(t.is_empty());
    }
}
