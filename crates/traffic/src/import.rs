//! Importing real captures as workloads.
//!
//! The paper's experiments replay "captured data at the speed exactly as
//! recorded"; this module closes the loop for downstream users: any pcap
//! capture (or any packet list) becomes a [`Trace`], replayable through
//! every engine in the workspace via [`crate::TraceCursor`]. Flows are
//! interned from the parsed 5-tuples, so RSS steering of an imported
//! trace behaves exactly like the synthetic one.

use crate::source::Arrival;
use crate::trace::Trace;
use netproto::{parse_frame, FlowKey, Packet};
use std::collections::HashMap;

/// What `import` did with the packets it saw.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ImportReport {
    /// Packets imported as trace records.
    pub imported: u64,
    /// Non-IPv4/TCP/UDP packets skipped (ARP, IPv6, malformed — the
    /// flow-steering experiments need a 5-tuple).
    pub skipped: u64,
}

/// Builds a [`Trace`] from captured packets.
///
/// Timestamps are rebased so the first imported packet arrives at t = 0
/// (engines run on trace-relative time). Packets must be in
/// non-decreasing timestamp order, as pcap savefiles are.
pub fn import(packets: &[Packet]) -> (Trace, ImportReport) {
    let mut flows: Vec<FlowKey> = Vec::new();
    let mut index: HashMap<FlowKey, u32> = HashMap::new();
    let mut records: Vec<Arrival> = Vec::with_capacity(packets.len());
    let mut report = ImportReport::default();
    let base = packets.first().map_or(0, |p| p.ts_ns);

    for pkt in packets {
        let Some(flow) = parse_frame(&pkt.data).ok().and_then(|p| p.flow) else {
            report.skipped += 1;
            continue;
        };
        let id = *index.entry(flow).or_insert_with(|| {
            flows.push(flow);
            (flows.len() - 1) as u32
        });
        // Recorded wire length; captures store the frame sans FCS, so add
        // the 4 FCS bytes back for rate math (our `len` convention).
        let len = (pkt.wire_len + 4).min(u32::from(u16::MAX)) as u16;
        records.push(Arrival {
            ts_ns: pkt.ts_ns.saturating_sub(base),
            flow: id,
            len,
        });
        report.imported += 1;
    }
    (Trace::new(flows, records), report)
}

/// Reads a pcap savefile and imports it as a trace.
pub fn import_savefile(data: &[u8]) -> Result<(Trace, ImportReport), pcap::SavefileError> {
    let sf = pcap::savefile::read_file(data)?;
    Ok(import(&sf.packets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrafficSource;
    use netproto::PacketBuilder;
    use std::net::Ipv4Addr;

    fn capture() -> Vec<Packet> {
        let mut b = PacketBuilder::new();
        let f1 = FlowKey::udp(
            Ipv4Addr::new(131, 225, 2, 1),
            53,
            Ipv4Addr::new(8, 8, 8, 8),
            53,
        );
        let f2 = FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            80,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        vec![
            b.build_packet(1_000_000, &f1, 100).unwrap(),
            b.build_packet(1_000_500, &f2, 200).unwrap(),
            b.build_packet(1_001_000, &f1, 100).unwrap(),
        ]
    }

    #[test]
    fn imports_and_rebases_timestamps() {
        let (trace, report) = import(&capture());
        assert_eq!(report.imported, 3);
        assert_eq!(report.skipped, 0);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.flow_count(), 2);
        let ts: Vec<u64> = trace.records().iter().map(|r| r.ts_ns).collect();
        assert_eq!(ts, vec![0, 500, 1_000]);
        // Same flow → same interned id.
        assert_eq!(trace.records()[0].flow, trace.records()[2].flow);
    }

    #[test]
    fn wire_len_gets_fcs_back() {
        let (trace, _) = import(&capture());
        assert_eq!(trace.records()[0].len, 104); // 100 captured + 4 FCS
    }

    #[test]
    fn non_flow_packets_are_skipped_and_counted() {
        let mut pkts = capture();
        pkts.insert(1, Packet::new(1_000_200, vec![0u8; 60])); // not IP
        let (trace, report) = import(&pkts);
        assert_eq!(report.imported, 3);
        assert_eq!(report.skipped, 1);
        assert_eq!(trace.len(), 3);
    }

    #[test]
    fn savefile_roundtrip_to_trace() {
        let pkts = capture();
        let mut file = Vec::new();
        pcap::savefile::write_file(&mut file, &pkts, pcap::Precision::Nanos, 65_535).unwrap();
        let (trace, report) = import_savefile(&file).unwrap();
        assert_eq!(report.imported, 3);
        assert_eq!(trace.flow_count(), 2);
    }

    #[test]
    fn imported_trace_replays_through_cursor() {
        let (trace, _) = import(&capture());
        let mut cursor = crate::TraceCursor::new(&trace);
        let mut n = 0;
        while let Some(a) = cursor.next_arrival() {
            assert!(a.len >= 104);
            n += 1;
        }
        assert_eq!(n, 3);
    }
}
