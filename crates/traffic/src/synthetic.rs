//! The synthetic border-router trace.
//!
//! Stand-in for the paper's experiment data: "we capture traffic from the
//! Fermilab border router … 5 million packets … approximately 32 seconds"
//! (§2.2). The generator reproduces the three statistical properties the
//! experiments depend on:
//!
//! * **heavy-tailed flow sizes** (bounded Pareto): a handful of elephant
//!   flows carry much of the traffic, so per-flow RSS steering piles them
//!   onto a few queues — the paper's *long-term load imbalance*;
//! * **ON/OFF bursty arrivals** within each flow (TCP windows draining at
//!   line rate, then idling): 10 ms-binned queue load spikes to many times
//!   its mean — the paper's *short-term load imbalance*;
//! * **TCP-dominant mix with site-prefix addressing** (131.225.0.0/16 on
//!   one side, matching the paper's `131.225.2 and UDP` filter examples).
//!
//! Generation is a pure function of [`BorderTraceConfig`] (including the
//! seed), so every figure built on the trace is exactly reproducible.

use crate::trace::Trace;
use crate::Arrival;
use netproto::{FlowKey, Protocol};
use sim::Pcg32;
use std::net::Ipv4Addr;

/// Configuration of the synthetic border-router trace.
#[derive(Debug, Clone)]
pub struct BorderTraceConfig {
    /// RNG seed; every output is a pure function of this config.
    pub seed: u64,
    /// Number of packets to generate (the paper's trace has 5 million).
    pub packets: usize,
    /// Trace duration in seconds (the paper's lasts ~32 s).
    pub duration_s: f64,
    /// Number of distinct flows to draw.
    pub flows: usize,
    /// Pareto shape for flow sizes; lower = heavier tail.
    pub pareto_alpha: f64,
    /// Largest flow size in packets (bounded Pareto upper cut-off).
    pub max_flow_packets: f64,
    /// Fraction of flows that are TCP (the paper notes TCP dominates).
    pub tcp_fraction: f64,
    /// Mean intra-burst packet gap in nanoseconds (line-rate-ish).
    pub burst_gap_ns: f64,
    /// Mean packets per burst (geometric).
    pub burst_len: f64,
    /// Mean gap between bursts of the same flow, in nanoseconds.
    pub think_gap_ns: f64,
}

impl Default for BorderTraceConfig {
    fn default() -> Self {
        BorderTraceConfig {
            seed: 0x5749_5245_4341_5030, // "WIRECAP0"
            packets: 5_000_000,
            duration_s: 32.0,
            flows: 4_500,
            pareto_alpha: 0.95,
            max_flow_packets: 2.0e6,
            tcp_fraction: 0.85,
            burst_gap_ns: 6_000.0,
            burst_len: 56.0,
            think_gap_ns: 120_000_000.0,
        }
    }
}

impl BorderTraceConfig {
    /// A scaled-down configuration for unit/integration tests: same
    /// statistical shape, ~100× fewer packets.
    pub fn small() -> Self {
        BorderTraceConfig {
            packets: 50_000,
            duration_s: 8.0,
            flows: 500,
            pareto_alpha: 1.0,
            max_flow_packets: 3e4,
            ..Default::default()
        }
    }
}

/// Generates the synthetic border-router trace.
pub fn generate_border_trace(cfg: &BorderTraceConfig) -> Trace {
    assert!(cfg.packets > 0 && cfg.flows > 0 && cfg.duration_s > 0.0);
    let mut rng = Pcg32::seeded(cfg.seed);
    let duration_ns = (cfg.duration_s * 1e9) as u64;

    // 1. Draw the flow population: keys and target sizes.
    let mut flows: Vec<FlowKey> = (0..cfg.flows).map(|_| random_flow(&mut rng, cfg)).collect();
    let sizes: Vec<f64> = (0..cfg.flows)
        .map(|_| rng.bounded_pareto(cfg.pareto_alpha, 2.0, cfg.max_flow_packets))
        .collect();
    // Scale sizes to the packet budget and convert to integer counts that
    // sum to *exactly* `cfg.packets`: each flow gets the increment of the
    // rounded cumulative sum, and the tail flow is trimmed (or grown) to
    // absorb residual rounding drift. This replaces the old pad-by-10 %
    // then decimate-evenly pass, which distorted burst trains and only
    // honored the budget by dropping packets after the fact.
    let total: f64 = sizes.iter().sum();
    let scale = cfg.packets as f64 / total;
    let budget = cfg.packets as u64;
    let mut int_sizes: Vec<u64> = Vec::with_capacity(cfg.flows);
    let mut cum = 0.0f64;
    let mut assigned = 0u64;
    for s in &sizes {
        cum += s * scale;
        let upto = (cum.round().max(0.0) as u64).min(budget);
        int_sizes.push(upto - assigned);
        assigned = upto;
    }
    if let Some(last) = int_sizes.last_mut() {
        *last += budget - assigned;
    }
    debug_assert_eq!(int_sizes.iter().sum::<u64>(), budget);

    // 2. Emit each flow's packets as ON/OFF bursts across the duration.
    //
    // Per-flow pacing adapts to the flow's size: an elephant is a bulk
    // transfer that streams in large bursts with short think times, a
    // mouse is a short exchange with long idle gaps. Without this, the
    // think gap would cap every flow near burst_len/think packets/s and
    // clip the heavy tail.
    let mut records = Vec::with_capacity(cfg.packets);
    for (id, &n) in int_sizes.iter().enumerate() {
        if n == 0 {
            continue;
        }
        // Elephants start across the first fifth so they span most of the
        // trace without piling their starts onto one instant; mice start
        // anywhere.
        let start_frac = if n > 5_000 {
            rng.next_f64() * 0.2
        } else {
            rng.next_f64() * 0.9
        };
        let start = (start_frac * duration_ns as f64) as u64;
        let span = (duration_ns - start) as f64;
        // Elephants stream in window-sized trains: hundreds of packets
        // back-to-back (a 64 KB+ TCP window at line rate), then idle.
        let burst_len = if n > 5_000 {
            cfg.burst_len * 12.0
        } else {
            cfg.burst_len
        };
        // Choose the think gap so the flow finishes just inside its
        // remaining span at its burst cadence — pacing flows across their
        // whole span keeps the aggregate load steady instead of
        // front-loading the trace.
        let cycles = (n as f64 / burst_len).max(1.0);
        let max_think = (0.95 * span / cycles - burst_len * cfg.burst_gap_ns).max(1e6);
        let think = cfg.think_gap_ns.min(max_think);

        let mut t = start;
        let mut emitted = 0u64;
        while emitted < n && t < duration_ns {
            let burst = (rng.exp(burst_len).ceil() as u64).clamp(1, n - emitted);
            for _ in 0..burst {
                if t >= duration_ns {
                    break;
                }
                records.push(Arrival {
                    ts_ns: t,
                    flow: id as u32,
                    len: packet_len(&mut rng),
                });
                emitted += 1;
                t += rng.exp(cfg.burst_gap_ns).max(700.0) as u64;
            }
            t += rng.exp(think) as u64;
        }
    }

    // 3. Top up any deficit with extra mouse flows (a flow leaves a
    // deficit only when the duration wall cuts its burst schedule short),
    // stopping exactly at the packet budget.
    while records.len() < cfg.packets {
        let id = flows.len();
        flows.push(random_flow(&mut rng, cfg));
        let mut t = (rng.next_f64() * 0.95 * duration_ns as f64) as u64;
        for _ in 0..rng.gen_range(2, 40) {
            if records.len() >= cfg.packets || t >= duration_ns {
                break;
            }
            records.push(Arrival {
                ts_ns: t,
                flow: id as u32,
                len: packet_len(&mut rng),
            });
            t += rng.exp(cfg.burst_gap_ns).max(700.0) as u64;
        }
    }
    debug_assert_eq!(records.len(), cfg.packets);

    // 4. Merge into one timeline. The per-flow counts already sum to the
    // budget, so no decimation pass is needed.
    records.sort_unstable_by_key(|r| r.ts_ns);
    Trace::new(flows, records)
}

fn random_flow(rng: &mut Pcg32, cfg: &BorderTraceConfig) -> FlowKey {
    // One endpoint inside the site prefix 131.225.0.0/16 (weighted toward
    // the /24s the paper filters on), the other on the public internet.
    let site = Ipv4Addr::new(
        131,
        225,
        [2u8, 2, 2, 9, 107, 160][rng.gen_range(0, 6) as usize],
        rng.gen_range(1, 255) as u8,
    );
    let remote = Ipv4Addr::new(
        [13u8, 34, 64, 93, 128, 146, 171, 192][rng.gen_range(0, 8) as usize],
        rng.gen_range(0, 256) as u8,
        rng.gen_range(0, 256) as u8,
        rng.gen_range(1, 255) as u8,
    );
    let proto = if rng.chance(cfg.tcp_fraction) {
        Protocol::Tcp
    } else {
        Protocol::Udp
    };
    let service_port = [80u16, 443, 53, 2811, 8443, 1094][rng.gen_range(0, 6) as usize];
    let ephemeral = rng.gen_range(32768, 61000) as u16;
    // Half the flows are inbound (remote → site), half outbound.
    if rng.chance(0.5) {
        FlowKey {
            src_ip: remote,
            dst_ip: site,
            src_port: service_port,
            dst_port: ephemeral,
            proto,
        }
    } else {
        FlowKey {
            src_ip: site,
            dst_ip: remote,
            src_port: ephemeral,
            dst_port: service_port,
            proto,
        }
    }
}

/// Bimodal internet packet-length mix: ~45 % minimum-size (ACKs, small
/// UDP), ~40 % MTU-size, the rest spread between.
fn packet_len(rng: &mut Pcg32) -> u16 {
    let p = rng.next_f64();
    if p < 0.45 {
        rng.gen_range(64, 90) as u16
    } else if p < 0.85 {
        1518
    } else {
        rng.gen_range(90, 1518) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::{SimTime, TimeSeries};

    fn small_trace() -> Trace {
        generate_border_trace(&BorderTraceConfig::small())
    }

    #[test]
    fn respects_budget_and_duration() {
        let cfg = BorderTraceConfig::small();
        let t = generate_border_trace(&cfg);
        assert_eq!(t.len(), cfg.packets);
        assert!(t.duration_ns() <= (cfg.duration_s * 1e9) as u64);
        // The emitted traffic should span most of the configured duration.
        assert!(t.duration_ns() > (0.5 * cfg.duration_s * 1e9) as u64);
    }

    #[test]
    fn budget_is_exact_across_seeds_and_scales() {
        // The emitted packet count and the per-flow size totals must hit
        // the configured budget exactly — no 10 % pad, no decimation.
        for seed in [1u64, 42, 0xDEAD_BEEF, 0x5749_5245_4341_5030] {
            for packets in [1usize, 97, 5_000, 50_000] {
                let cfg = BorderTraceConfig {
                    seed,
                    packets,
                    ..BorderTraceConfig::small()
                };
                let t = generate_border_trace(&cfg);
                assert_eq!(t.len(), packets, "seed={seed} packets={packets}");
                let sum: u64 = t.flow_sizes().iter().sum();
                assert_eq!(sum, packets as u64, "seed={seed} packets={packets}");
            }
        }
    }

    #[test]
    fn deterministic_seed_regression() {
        // Pin the default small-config output: exact budget plus a content
        // fingerprint, so any change to the generation pipeline (scaling,
        // rounding, burst schedule) shows up as a diff here rather than as
        // a silent statistics shift.
        let cfg = BorderTraceConfig::small();
        let a = generate_border_trace(&cfg);
        let b = generate_border_trace(&cfg);
        assert_eq!(a.records(), b.records());
        assert_eq!(a.len(), cfg.packets);
        let fp = a.records().iter().fold(0u64, |acc, r| {
            acc.wrapping_mul(0x100_0000_01b3)
                .wrapping_add(r.ts_ns ^ (u64::from(r.flow) << 32) ^ u64::from(r.len))
        });
        assert_eq!(fp, FINGERPRINT, "trace content changed: fp={fp:#x}");
    }

    /// FNV-style fingerprint of the default small-config records; update
    /// deliberately when the generator is intentionally changed.
    const FINGERPRINT: u64 = 0xbc61_0ed9_6b5e_13d2;

    #[test]
    fn is_deterministic() {
        let a = small_trace();
        let b = small_trace();
        assert_eq!(a.records(), b.records());
        assert_eq!(a.flows(), b.flows());
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_trace();
        let b = generate_border_trace(&BorderTraceConfig {
            seed: 99,
            ..BorderTraceConfig::small()
        });
        assert_ne!(a.records(), b.records());
    }

    #[test]
    fn records_are_time_ordered() {
        let t = small_trace();
        assert!(t.records().windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn flow_sizes_are_heavy_tailed() {
        let t = small_trace();
        let mut sizes = t.flow_sizes();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sizes.iter().sum();
        let top1pct: u64 = sizes[..sizes.len() / 100].iter().sum();
        // The top 1% of flows should carry a disproportionate share.
        assert!(
            top1pct as f64 / total as f64 > 0.25,
            "top-1% share = {}",
            top1pct as f64 / total as f64
        );
    }

    #[test]
    fn traffic_is_bursty_at_10ms_scale() {
        // The paper's Fig. 3 phenomenon: 10 ms bins far above the mean.
        let t = small_trace();
        let mut ts = TimeSeries::profiler_default();
        for r in t.records() {
            ts.record(SimTime(r.ts_ns));
        }
        assert!(ts.burstiness() > 3.0, "burstiness = {}", ts.burstiness());
    }

    #[test]
    fn mix_is_tcp_dominant_with_site_prefix() {
        let t = small_trace();
        let tcp = t
            .flows()
            .iter()
            .filter(|f| f.proto == Protocol::Tcp)
            .count();
        let frac = tcp as f64 / t.flows().len() as f64;
        assert!((0.8..0.9).contains(&frac), "tcp fraction = {frac}");
        assert!(t.flows().iter().all(|f| {
            f.src_ip.octets()[..2] == [131, 225] || f.dst_ip.octets()[..2] == [131, 225]
        }));
    }

    #[test]
    fn some_traffic_matches_the_paper_filter() {
        // The paper applies "131.225.2 and UDP"; the trace must contain
        // packets matching it (and packets not matching it).
        let t = small_trace();
        let sizes = t.flow_sizes();
        let matching: u64 = t
            .flows()
            .iter()
            .zip(&sizes)
            .filter(|(f, _)| {
                f.proto == Protocol::Udp
                    && (f.src_ip.octets()[..3] == [131, 225, 2]
                        || f.dst_ip.octets()[..3] == [131, 225, 2])
            })
            .map(|(_, n)| n)
            .sum();
        assert!(matching > 0);
        assert!(matching < t.len() as u64);
    }

    #[test]
    fn mean_rate_is_plausible() {
        // ~50k packets over ~8s ≈ 6.2k p/s; check the right order of
        // magnitude (the full-size config scales to ~156k p/s, matching
        // the paper's aggregate trace rate).
        let t = small_trace();
        let r = t.mean_rate_pps();
        assert!((3_000.0..20_000.0).contains(&r), "rate = {r}");
    }
}
