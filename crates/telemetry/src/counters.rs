//! Lock-free per-queue counter groups, sharded by writer role.
//!
//! A queue's counters are split into three cache-padded groups so the
//! threads that write them never share a cache line: the capture
//! thread owns [`CaptureSide`], the application/consumer side owns
//! [`DeliverySide`], and buddy capture threads placing offloaded
//! chunks own [`PeerSide`]. All updates are relaxed atomics — there is
//! no lock anywhere, and nothing is paid until a snapshot is taken.

use crate::hist::Log2Histogram;
use crate::snapshot::QueueTelemetry;
use std::sync::atomic::{AtomicU64, Ordering};

/// A single relaxed-atomic monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` (relaxed). Safe with any number of concurrent writers.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one (relaxed). Safe with any number of concurrent writers.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` with single-writer semantics: a relaxed load + store
    /// instead of an atomic read-modify-write. On x86 this compiles to
    /// two plain `mov`s where [`add`](Self::add) needs a `lock xadd`,
    /// which is what keeps [`CaptureSide`] free on the hot path. Only
    /// the shard's one designated writer thread may call this; readers
    /// (snapshots) stay safe because the store is still atomic.
    #[inline]
    pub fn add_local(&self, n: u64) {
        self.0
            .store(self.0.load(Ordering::Relaxed) + n, Ordering::Relaxed);
    }

    /// Adds one with single-writer semantics (see
    /// [`add_local`](Self::add_local)).
    #[inline]
    pub fn inc_local(&self) {
        self.add_local(1);
    }

    /// Current value (relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Pads its contents to its own cache line (128 bytes covers adjacent-
/// line prefetching on modern x86).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CacheAligned<T>(pub T);

impl<T> std::ops::Deref for CacheAligned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CacheAligned<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Counters written only by the queue's capture thread.
///
/// Single-writer by construction, so updates use the load+store
/// [`Counter::add_local`] path and the histograms' single-writer
/// [`Log2Histogram::record`] — no lock-prefixed instructions anywhere
/// on the capture hot path.
#[derive(Debug, Default)]
pub struct CaptureSide {
    /// Packets the engine attempted to capture (seen on the ring).
    pub offered_packets: Counter,
    /// Packets landed in pool chunks.
    pub captured_packets: Counter,
    /// Packets lost on the capture side (pool or capture queue full).
    pub capture_drop_packets: Counter,
    /// Captured packets discarded before delivery (e.g. chunk rejected
    /// by a full buddy capture queue).
    pub delivery_drop_packets: Counter,
    /// Chunks sealed and handed toward user space (full or partial).
    pub sealed_chunks: Counter,
    /// Sealed chunks that were partial (capture-timeout flushes).
    pub partial_chunks: Counter,
    /// Chunks this queue's capture thread placed on a buddy instead.
    pub offloaded_out_chunks: Counter,
    /// Depth of the destination capture queue observed at each
    /// placement decision.
    pub capture_queue_depth: Log2Histogram,
    /// Packets per sealed chunk (fill level; partials show up short).
    pub chunk_fill: Log2Histogram,
    /// Chunks (or packets, for batch-copy baselines) moved per handoff
    /// batch.
    pub batch_size: Log2Histogram,
}

/// Counters written only by the application / consumer side.
#[derive(Debug, Default)]
pub struct DeliverySide {
    /// Packets handed to the application.
    pub delivered_packets: Counter,
    /// Chunks recycled back to the pool after consumption.
    pub recycled_chunks: Counter,
    /// Capture-to-delivery latency per chunk, ns: sealed-timestamp to
    /// recycle, recorded once per chunk by the consumer (single
    /// writer, so [`Log2Histogram::record`]'s load+store path is safe).
    pub latency_ns: Log2Histogram,
    /// Span decomposition of `latency_ns`, recorded only for *sampled*
    /// chunks (`span_sample_n`, see [`crate::spans`]): seal → ring
    /// publish (capture-side residency).
    pub stage_backend_ns: Log2Histogram,
    /// Sampled-span stage: ring publish → winning acquisition attempt
    /// (time waiting in the delivery ring / steal deque).
    pub stage_queue_wait_ns: Log2Histogram,
    /// Sampled-span stage: acquisition attempt → ownership (the
    /// claim-CAS window in concurrent mode; ~0 on pop/steal paths).
    pub stage_claim_ns: Log2Histogram,
    /// Sampled-span stage: ownership → delivery start (reorder-buffer
    /// residency in in-order mode).
    pub stage_reorder_ns: Log2Histogram,
    /// Sampled-span stage: delivery start → end (handler time).
    pub stage_deliver_ns: Log2Histogram,
}

/// A running maximum updated with `fetch_max` — safe with any number
/// of concurrent writers (the queue's own capture thread and buddies
/// both push onto a capture queue).
#[derive(Debug, Default)]
pub struct Watermark(AtomicU64);

impl Watermark {
    /// Creates a zeroed watermark.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the watermark to at least `v` (relaxed `fetch_max`).
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Highest value observed so far.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge updated with relaxed stores — safe with any
/// number of writers (last write wins; gauges are instantaneous
/// readings, not accumulations).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes the current reading (relaxed store).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Last published reading (relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Counters written by consumer-pool workers (`wirecap::steal`). Any
/// worker may touch any group queue's shard — a thief charges the
/// victim chunk's home queue — so everything here is multi-writer:
/// plain fetch-add [`Counter`]s (fired per chunk, never per packet)
/// and a last-value [`Gauge`].
#[derive(Debug, Default)]
pub struct PoolSide {
    /// Chunks a pool worker primarily responsible for this queue took
    /// from other workers' deques.
    pub steal_in_chunks: Counter,
    /// Chunks homed on this queue that a non-owning worker stole.
    pub steal_out_chunks: Counter,
    /// Packets inside those stolen chunks.
    pub stolen_packets: Counter,
    /// Times a pool worker servicing this queue parked on the delivery
    /// gate (adaptive polling reached the park stage). Every worker
    /// that *owns* the queue attributes its parks here — a worker
    /// owning several queues charges each of them, and dedicated
    /// stealer workers (no owned queues) charge none — so the counter
    /// is multi-writer like the rest of the shard.
    pub worker_parks: Counter,
    /// Claim CAS races lost on this queue's claim queue (concurrent
    /// single-queue mode): a worker targeted a published chunk but
    /// another worker claimed it first. High rates mean workers are
    /// piling onto one queue faster than chunks seal.
    pub claim_contention: Counter,
    /// Occupancy of the primary worker's local steal deque, published
    /// after each ring drain.
    pub steal_queue_len: Gauge,
    /// Chunks parked in this queue's in-order reorder buffer, published
    /// by the engine at snapshot time (0 unless in-order concurrent
    /// mode is active).
    pub reorder_occupancy: Gauge,
}

/// Counters written by the flow-analytics stage (`flowstat` sinks
/// running inside pool workers). Any worker may process any queue's
/// chunks — a thief charges the chunk's home queue — so everything here
/// is multi-writer: fetch-add [`Counter`]s flushed once per chunk (the
/// sink batches per-packet movement into deltas), never per packet.
#[derive(Debug, Default)]
pub struct FlowSide {
    /// Packets recorded into a flow table (parsed to an IPv4 5-tuple).
    pub flow_tracked_packets: Counter,
    /// Flows displaced by per-set LRU eviction.
    pub flow_evicted_flows: Counter,
    /// Packets folded into the eviction aggregate when their flow was
    /// displaced (live per-flow sums + this == `flow_tracked_packets`).
    pub flow_evicted_packets: Counter,
    /// Occupied non-matching slots scanned during table lookups.
    pub flow_hash_collisions: Counter,
    /// Live flows resident across this queue's processing workers,
    /// published after each chunk.
    pub flow_table_occupancy: Gauge,
}

/// Counters written by *other* queues' capture threads (buddy
/// placements land here).
#[derive(Debug, Default)]
pub struct PeerSide {
    /// Chunks buddies placed on this queue's capture queue.
    pub offloaded_in_chunks: Counter,
}

/// Counters written by the capture-to-disk subsystem (`capdisk`): the
/// per-queue drainer and writer threads. These threads fire once per
/// chunk or per write batch — never per packet — so plain multi-writer
/// [`Counter::add`] is cheap enough and keeps the shard safe no matter
/// how the sink splits work across its threads.
#[derive(Debug, Default)]
pub struct DiskSide {
    /// Packets encoded into a capture file and handed to the OS.
    pub disk_written_packets: Counter,
    /// Packets discarded because the disk writer fell behind (the
    /// bounded handoff ring was full) — the explicit graceful-
    /// degradation drop, never a silent stall of the capture path.
    pub disk_drop_packets: Counter,
    /// File-format bytes written (headers + records), post-encoding.
    pub disk_written_bytes: Counter,
    /// Capture files opened (rotations create new ones).
    pub disk_files: Counter,
    /// Sampled-span stage (see [`crate::spans`]): drainer handoff →
    /// write-batch commit, recorded once per sampled chunk by the
    /// writer thread (single writer per queue, so the load+store
    /// histogram path is safe).
    pub stage_disk_ns: Log2Histogram,
}

/// All counters for one queue, one cache line per writer role.
#[derive(Debug, Default)]
pub struct QueueCounters {
    /// Capture-thread shard.
    pub cap: CacheAligned<CaptureSide>,
    /// Application/consumer shard.
    pub app: CacheAligned<DeliverySide>,
    /// Buddy-peer shard.
    pub peer: CacheAligned<PeerSide>,
    /// Capture-to-disk shard (zero unless a disk sink is attached).
    pub disk: CacheAligned<DiskSide>,
    /// Consumer-pool shard (zero unless a `ConsumerPool` is attached).
    pub pool: CacheAligned<PoolSide>,
    /// Flow-analytics shard (zero unless a flow sink is attached).
    pub flow: CacheAligned<FlowSide>,
    /// High-watermark of this queue's capture-queue depth. Multi-writer
    /// (`fetch_max` from whoever pushes onto the queue), so it gets its
    /// own cache line rather than riding in a single-writer shard.
    pub capture_queue_watermark: CacheAligned<Watermark>,
}

impl QueueCounters {
    /// Creates a zeroed counter group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies every counter and histogram into a [`QueueTelemetry`]
    /// for queue `queue`. Gauges (`capture_queue_len`, `free_chunks`,
    /// ring occupancy) and NIC-owned counters are left at zero for the
    /// engine to fill in.
    pub fn snapshot(&self, queue: usize) -> QueueTelemetry {
        let cap = &self.cap.0;
        let latency = self.app.0.latency_ns.snapshot();
        let p999 = latency.quantile(0.999);
        QueueTelemetry {
            queue,
            offered_packets: cap.offered_packets.get(),
            captured_packets: cap.captured_packets.get(),
            delivered_packets: self.app.0.delivered_packets.get(),
            capture_drop_packets: cap.capture_drop_packets.get(),
            delivery_drop_packets: cap.delivery_drop_packets.get(),
            nic_drop_packets: 0,
            forwarded_packets: 0,
            transmitted_packets: 0,
            sealed_chunks: cap.sealed_chunks.get(),
            partial_chunks: cap.partial_chunks.get(),
            recycled_chunks: self.app.0.recycled_chunks.get(),
            offloaded_in_chunks: self.peer.0.offloaded_in_chunks.get(),
            offloaded_out_chunks: cap.offloaded_out_chunks.get(),
            disk_written_packets: self.disk.0.disk_written_packets.get(),
            disk_drop_packets: self.disk.0.disk_drop_packets.get(),
            steal_in_chunks: self.pool.0.steal_in_chunks.get(),
            steal_out_chunks: self.pool.0.steal_out_chunks.get(),
            stolen_packets: self.pool.0.stolen_packets.get(),
            worker_parks: self.pool.0.worker_parks.get(),
            claim_contention: self.pool.0.claim_contention.get(),
            flow_tracked_packets: self.flow.0.flow_tracked_packets.get(),
            flow_evicted_flows: self.flow.0.flow_evicted_flows.get(),
            flow_evicted_packets: self.flow.0.flow_evicted_packets.get(),
            flow_hash_collisions: self.flow.0.flow_hash_collisions.get(),
            steal_queue_len: self.pool.0.steal_queue_len.get(),
            reorder_occupancy: self.pool.0.reorder_occupancy.get(),
            flow_table_occupancy: self.flow.0.flow_table_occupancy.get(),
            capture_queue_len: 0,
            capture_queue_watermark: self.capture_queue_watermark.get(),
            free_chunks: 0,
            ring_ready: 0,
            ring_used: 0,
            capture_queue_depth: cap.capture_queue_depth.snapshot(),
            chunk_fill: cap.chunk_fill.snapshot(),
            batch_size: cap.batch_size.snapshot(),
            latency_ns: latency,
            latency_p999_ns: p999,
            stage_backend_ns: self.app.0.stage_backend_ns.snapshot(),
            stage_queue_wait_ns: self.app.0.stage_queue_wait_ns.snapshot(),
            stage_claim_ns: self.app.0.stage_claim_ns.snapshot(),
            stage_reorder_ns: self.app.0.stage_reorder_ns.snapshot(),
            stage_deliver_ns: self.app.0.stage_deliver_ns.snapshot(),
            stage_disk_ns: self.disk.0.stage_disk_ns.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_cache_line_separated() {
        assert_eq!(std::mem::align_of::<CacheAligned<CaptureSide>>(), 128);
        let qc = QueueCounters::new();
        let cap = &qc.cap as *const _ as usize;
        let app = &qc.app as *const _ as usize;
        let peer = &qc.peer as *const _ as usize;
        assert!(app.abs_diff(cap) >= 128);
        assert!(peer.abs_diff(app) >= 128);
    }

    #[test]
    fn snapshot_copies_counters() {
        let qc = QueueCounters::new();
        qc.cap.0.offered_packets.add(10);
        qc.cap.0.captured_packets.add(8);
        qc.cap.0.capture_drop_packets.add(2);
        qc.app.0.delivered_packets.add(8);
        qc.peer.0.offloaded_in_chunks.inc();
        qc.cap.0.chunk_fill.record(8);
        qc.app.0.latency_ns.record(1500);
        qc.capture_queue_watermark.observe(9);
        qc.capture_queue_watermark.observe(4);
        let t = qc.snapshot(3);
        assert_eq!(t.queue, 3);
        assert_eq!(t.offered_packets, 10);
        assert_eq!(t.captured_packets, 8);
        assert_eq!(t.capture_drop_packets, 2);
        assert_eq!(t.delivered_packets, 8);
        assert_eq!(t.offloaded_in_chunks, 1);
        assert_eq!(t.chunk_fill.count, 1);
        assert_eq!(t.latency_ns.count, 1);
        assert_eq!(t.latency_ns.max, 1500);
        assert_eq!(t.capture_queue_watermark, 9, "watermark keeps the max");
    }

    #[test]
    fn snapshot_copies_stage_histograms_and_derives_p999() {
        let qc = QueueCounters::new();
        for ns in [100u64, 200, 400, 1 << 20] {
            qc.app.0.latency_ns.record(ns);
        }
        qc.app.0.stage_backend_ns.record(50);
        qc.app.0.stage_queue_wait_ns.record(60);
        qc.app.0.stage_claim_ns.record(5);
        qc.app.0.stage_reorder_ns.record(7);
        qc.app.0.stage_deliver_ns.record(80);
        qc.disk.0.stage_disk_ns.record(3000);
        let t = qc.snapshot(0);
        assert_eq!(t.stage_backend_ns.count, 1);
        assert_eq!(t.stage_queue_wait_ns.count, 1);
        assert_eq!(t.stage_claim_ns.count, 1);
        assert_eq!(t.stage_reorder_ns.count, 1);
        assert_eq!(t.stage_deliver_ns.count, 1);
        assert_eq!(t.stage_disk_ns.count, 1);
        assert_eq!(
            t.latency_p999_ns,
            t.latency_ns.quantile(0.999),
            "p99.9 scalar mirrors the histogram"
        );
        assert!(t.latency_p999_ns >= 1 << 20, "tail sample dominates p99.9");
    }
}
