//! Per-engine registry: one [`QueueCounters`] group per queue plus the
//! shared [`EventTracer`], the completed-span ring and the pool
//! workers' time-state profiles.

use crate::counters::QueueCounters;
use crate::snapshot::QueueTelemetry;
use crate::spans::{SpanRing, WorkerState, WorkerTelemetry};
use crate::trace::EventTracer;
use std::sync::{Arc, Mutex};

/// Default number of trace events retained per engine.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// All telemetry state for one engine instance.
///
/// Constructed once at engine start; capture/consumer threads hold
/// `&Registry` (usually via the engine's shared state) and update
/// their own queue's counter shards with relaxed atomics.
#[derive(Debug)]
pub struct Registry {
    queues: Vec<QueueCounters>,
    tracer: EventTracer,
    spans: SpanRing,
    workers: Mutex<Vec<Arc<WorkerState>>>,
}

impl Registry {
    /// Creates a registry for `queues` queues with the default trace
    /// capacity (tracer disabled).
    pub fn new(queues: usize) -> Self {
        Self::with_trace_capacity(queues, DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a registry retaining up to `trace_capacity` events.
    pub fn with_trace_capacity(queues: usize, trace_capacity: usize) -> Self {
        Registry {
            queues: (0..queues).map(|_| QueueCounters::new()).collect(),
            tracer: EventTracer::new(trace_capacity),
            spans: SpanRing::default(),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// Number of queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// The counter group for queue `q`.
    #[inline]
    pub fn queue(&self, q: usize) -> &QueueCounters {
        &self.queues[q]
    }

    /// The shared event tracer.
    #[inline]
    pub fn tracer(&self) -> &EventTracer {
        &self.tracer
    }

    /// The ring of completed, sampled chunk spans.
    #[inline]
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// Registers a pool worker's time-state profile and returns the
    /// shared handle the worker accounts into. Called once per worker
    /// at pool start.
    pub fn register_worker(&self, worker: u32) -> Arc<WorkerState> {
        let state = Arc::new(WorkerState::new(worker));
        self.workers
            .lock()
            .expect("worker list poisoned")
            .push(Arc::clone(&state));
        state
    }

    /// Point-in-time copies of every registered worker's time-state
    /// buckets, ordered by worker index.
    pub fn worker_telemetry(&self) -> Vec<WorkerTelemetry> {
        let mut out: Vec<WorkerTelemetry> = self
            .workers
            .lock()
            .expect("worker list poisoned")
            .iter()
            .map(|w| w.snapshot())
            .collect();
        out.sort_by_key(|w| w.worker);
        out
    }

    /// Snapshot of queue `q`'s counters; engine-owned gauges are left
    /// at zero for the caller to fill.
    pub fn snapshot_queue(&self, q: usize) -> QueueTelemetry {
        self.queues[q].snapshot(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_snapshots_per_queue() {
        let r = Registry::new(2);
        r.queue(0).cap.0.captured_packets.add(5);
        r.queue(1).cap.0.captured_packets.add(7);
        assert_eq!(r.snapshot_queue(0).captured_packets, 5);
        assert_eq!(r.snapshot_queue(1).captured_packets, 7);
        assert_eq!(r.snapshot_queue(1).queue, 1);
        assert_eq!(r.queue_count(), 2);
    }

    #[test]
    fn registry_hosts_span_ring_and_worker_profiles() {
        use crate::spans::{SpanRecord, WorkerTimeState};
        let r = Registry::new(1);
        r.spans().push(SpanRecord {
            seq: 3,
            ..Default::default()
        });
        assert_eq!(r.spans().records().len(), 1);
        let w1 = r.register_worker(1);
        let w0 = r.register_worker(0);
        w0.account(WorkerTimeState::Spin, 9);
        w1.account(WorkerTimeState::Park, 4);
        let t = r.worker_telemetry();
        assert_eq!(t.len(), 2, "both workers registered");
        assert_eq!(t[0].worker, 0, "sorted by worker index");
        assert_eq!(t[0].spin_ns, 9);
        assert_eq!(t[1].park_ns, 4);
    }
}
