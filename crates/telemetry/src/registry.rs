//! Per-engine registry: one [`QueueCounters`] group per queue plus the
//! shared [`EventTracer`].

use crate::counters::QueueCounters;
use crate::snapshot::QueueTelemetry;
use crate::trace::EventTracer;

/// Default number of trace events retained per engine.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// All telemetry state for one engine instance.
///
/// Constructed once at engine start; capture/consumer threads hold
/// `&Registry` (usually via the engine's shared state) and update
/// their own queue's counter shards with relaxed atomics.
#[derive(Debug)]
pub struct Registry {
    queues: Vec<QueueCounters>,
    tracer: EventTracer,
}

impl Registry {
    /// Creates a registry for `queues` queues with the default trace
    /// capacity (tracer disabled).
    pub fn new(queues: usize) -> Self {
        Self::with_trace_capacity(queues, DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a registry retaining up to `trace_capacity` events.
    pub fn with_trace_capacity(queues: usize, trace_capacity: usize) -> Self {
        Registry {
            queues: (0..queues).map(|_| QueueCounters::new()).collect(),
            tracer: EventTracer::new(trace_capacity),
        }
    }

    /// Number of queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// The counter group for queue `q`.
    #[inline]
    pub fn queue(&self, q: usize) -> &QueueCounters {
        &self.queues[q]
    }

    /// The shared event tracer.
    #[inline]
    pub fn tracer(&self) -> &EventTracer {
        &self.tracer
    }

    /// Snapshot of queue `q`'s counters; engine-owned gauges are left
    /// at zero for the caller to fill.
    pub fn snapshot_queue(&self, q: usize) -> QueueTelemetry {
        self.queues[q].snapshot(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_snapshots_per_queue() {
        let r = Registry::new(2);
        r.queue(0).cap.0.captured_packets.add(5);
        r.queue(1).cap.0.captured_packets.add(7);
        assert_eq!(r.snapshot_queue(0).captured_packets, 5);
        assert_eq!(r.snapshot_queue(1).captured_packets, 7);
        assert_eq!(r.snapshot_queue(1).queue, 1);
        assert_eq!(r.queue_count(), 2);
    }
}
