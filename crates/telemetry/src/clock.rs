//! Process-wide monotonic nanosecond clock.
//!
//! Latency stamping needs a monotonic timestamp that fits in a `u64`
//! and can be compared across threads. [`mono_ns`] measures nanoseconds
//! since a process-wide epoch (the first call), so stamps taken on the
//! capture thread and read on the consumer thread subtract directly.
//!
//! Cost model: one `Instant::now()` (a `clock_gettime(CLOCK_MONOTONIC)`
//! vDSO call on Linux, ~20 ns) per invocation. The live engine pays it
//! once per *chunk* seal — amortized over M packets — never per packet;
//! the `latency_stamping` entry of `BENCH_hotpath.json` keeps that
//! claim measured.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide epoch (the first call from any
/// thread). Monotonic and thread-consistent; starts near zero so the
/// values stay far from `u64` overflow.
#[inline]
pub fn mono_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// Pre-touches the epoch so the first hot-path caller does not pay the
/// one-time initialization. Engines call this at start.
pub fn init() {
    let _ = mono_ns();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mono_ns_is_monotonic() {
        init();
        let a = mono_ns();
        let b = mono_ns();
        assert!(b >= a);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let c = mono_ns();
        assert!(c > b + 1_000_000, "sleep(2ms) must advance the clock");
    }
}
