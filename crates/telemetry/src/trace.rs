//! Lightweight ring-buffer event tracer for chunk lifecycle debugging.
//!
//! Records chunk state transitions (`free → attached → captured →
//! recycled`) and offload decisions (which buddy was chosen, and the
//! occupancy that drove the choice). The tracer is disabled by default:
//! [`EventTracer::record`] while disabled is a single relaxed load, so
//! it can sit on the hot path unconditionally. When enabled, the last
//! `capacity` events are kept in a bounded ring behind a mutex — this
//! is a debugging facility, not a hot-path counter.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Well-known event kinds. Free-form strings are allowed; these are the
/// ones the engines emit.
pub mod kind {
    /// A free chunk was attached to ring descriptors (`free → attached`).
    pub const ATTACH: &str = "attach";
    /// A chunk was sealed and captured to user space
    /// (`attached → captured`); `info` carries the packet count.
    pub const CAPTURE: &str = "capture";
    /// A partial chunk was captured on timeout; `info` carries the
    /// packet count.
    pub const CAPTURE_PARTIAL: &str = "capture_partial";
    /// A captured chunk was recycled back to the pool
    /// (`captured → free`).
    pub const RECYCLE: &str = "recycle";
    /// A chunk was placed on a buddy's capture queue instead of home;
    /// `target` is the buddy, `info` the buddy's observed occupancy.
    pub const OFFLOAD: &str = "offload";
    /// A placement was rejected (capture queue full); the chunk's
    /// packets become delivery drops.
    pub const REJECT: &str = "reject";
}

/// One traced event. `kind` is one of the [`kind`] constants; `chunk`
/// is the chunk id within its pool; `target` is the destination queue
/// for placement events (the queue itself otherwise); `info` is
/// kind-specific (packet count, occupancy, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (monotonic across queues).
    pub seq: u64,
    /// Event timestamp in nanoseconds (sim time or wall clock).
    pub ts_ns: u64,
    /// Queue whose capture path emitted the event.
    pub queue: u32,
    /// Event kind (see [`kind`]).
    pub kind: &'static str,
    /// Chunk id within its pool.
    pub chunk: u32,
    /// Destination queue for placements; the home queue otherwise.
    pub target: u32,
    /// Kind-specific payload (packet count, occupancy, …).
    pub info: u64,
}

/// Bounded ring buffer of [`TraceEvent`]s, newest wins.
#[derive(Debug)]
pub struct EventTracer {
    enabled: AtomicBool,
    seq: AtomicU64,
    ring: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    capacity: usize,
    next: usize,
}

impl EventTracer {
    /// Creates a tracer keeping the last `capacity` events, disabled.
    pub fn new(capacity: usize) -> Self {
        EventTracer {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                capacity: capacity.max(1),
                next: 0,
            }),
        }
    }

    /// Starts recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops recording (already-captured events are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether [`record`](Self::record) currently stores events. One
    /// relaxed load — callers may use it to skip argument computation.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records an event if enabled; a single relaxed load otherwise.
    #[inline]
    pub fn record(
        &self,
        ts_ns: u64,
        queue: u32,
        kind: &'static str,
        chunk: u32,
        target: u32,
        info: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.record_always(ts_ns, queue, kind, chunk, target, info);
    }

    fn record_always(
        &self,
        ts_ns: u64,
        queue: u32,
        kind: &'static str,
        chunk: u32,
        target: u32,
        info: u64,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = TraceEvent {
            seq,
            ts_ns,
            queue,
            kind,
            chunk,
            target,
            info,
        };
        let mut ring = self.ring.lock().expect("tracer ring poisoned");
        if ring.buf.len() < ring.capacity {
            ring.buf.push(ev);
        } else {
            let at = ring.next;
            ring.buf[at] = ev;
        }
        ring.next = (ring.next + 1) % ring.capacity;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock().expect("tracer ring poisoned");
        let mut out = Vec::with_capacity(ring.buf.len());
        if ring.buf.len() == ring.capacity {
            out.extend_from_slice(&ring.buf[ring.next..]);
            out.extend_from_slice(&ring.buf[..ring.next]);
        } else {
            out.extend_from_slice(&ring.buf);
        }
        out
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("tracer ring poisoned").buf.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = EventTracer::new(8);
        t.record(1, 0, kind::CAPTURE, 0, 0, 64);
        assert!(t.is_empty());
    }

    #[test]
    fn ring_keeps_newest_in_order() {
        let t = EventTracer::new(4);
        t.enable();
        for i in 0..10u64 {
            t.record(i, 0, kind::RECYCLE, i as u32, 0, 0);
        }
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        t.disable();
        t.record(99, 0, kind::RECYCLE, 99, 0, 0);
        assert_eq!(t.len(), 4, "disabled tracer stops recording");
    }
}
