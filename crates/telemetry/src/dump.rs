//! Snapshot dumping: on `SIGUSR1`, at shutdown, or on demand.
//!
//! The dump targets are environment-driven so the `scripts/` harnesses
//! can request telemetry without touching engine code:
//!
//! * `WIRECAP_TELEMETRY_DUMP` — where to write: a file path, or `-`
//!   for stderr. Unset means dumping is off.
//! * `WIRECAP_TELEMETRY_FORMAT` — `json` (default) or `prometheus`.
//!
//! [`install_sigusr1`] registers a minimal signal handler that only
//! sets an atomic flag; engines poll [`take_dump_request`] from their
//! capture loop and call [`dump_snapshot`] when it fires (and again at
//! shutdown).

use crate::snapshot::EngineSnapshot;
use std::sync::atomic::{AtomicBool, Ordering};

static DUMP_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Serializes tests that touch the process-global `DUMP_REQUESTED`
/// flag (the unit tests here and the sampler's flag-polling test run
/// in the same binary).
#[cfg(test)]
pub(crate) static TEST_FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Requests a dump, as the `SIGUSR1` handler does. Useful from tests
/// and platforms without signal support.
pub fn request_dump() {
    DUMP_REQUESTED.store(true, Ordering::Relaxed);
}

/// True if a dump has been requested and not yet consumed.
pub fn dump_requested() -> bool {
    DUMP_REQUESTED.load(Ordering::Relaxed)
}

/// Consumes a pending dump request, returning whether one was pending.
pub fn take_dump_request() -> bool {
    DUMP_REQUESTED.swap(false, Ordering::Relaxed)
}

/// Installs the `SIGUSR1` handler (Linux only; a no-op returning
/// `false` elsewhere). The handler only sets an atomic flag — all I/O
/// happens on the engine thread that polls [`take_dump_request`].
pub fn install_sigusr1() -> bool {
    sys::install()
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    use std::sync::atomic::Ordering;

    /// `SIGUSR1` on Linux (x86-64 and aarch64).
    const SIGUSR1: i32 = 10;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_sigusr1(_signum: i32) {
        // Async-signal-safe: a single relaxed store.
        super::DUMP_REQUESTED.store(true, Ordering::Relaxed);
    }

    pub fn install() -> bool {
        // SAFETY: `signal(2)` with a handler that only performs an
        // atomic store is async-signal-safe; no Rust runtime state is
        // touched inside the handler.
        unsafe {
            signal(SIGUSR1, on_sigusr1);
        }
        true
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    pub fn install() -> bool {
        false
    }
}

/// Renders `snap` per `WIRECAP_TELEMETRY_FORMAT` and writes it to the
/// `WIRECAP_TELEMETRY_DUMP` target. Returns `false` (and does nothing)
/// when `WIRECAP_TELEMETRY_DUMP` is unset; I/O errors are reported on
/// stderr rather than panicking an engine thread.
pub fn dump_snapshot(snap: &EngineSnapshot) -> bool {
    let Some(target) = std::env::var_os("WIRECAP_TELEMETRY_DUMP") else {
        return false;
    };
    let body = match std::env::var("WIRECAP_TELEMETRY_FORMAT").as_deref() {
        Ok("prometheus") => snap.to_prometheus(),
        _ => snap.to_json() + "\n",
    };
    if target == "-" {
        eprint!("{body}");
        return true;
    }
    if let Err(e) = std::fs::write(&target, body) {
        eprintln!(
            "wirecap telemetry: writing {}: {e}",
            target.to_string_lossy()
        );
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_flag_is_take_once() {
        let _guard = TEST_FLAG_LOCK.lock().unwrap();
        assert!(!take_dump_request());
        request_dump();
        assert!(dump_requested());
        assert!(take_dump_request());
        assert!(!take_dump_request());
    }

    #[test]
    fn install_succeeds_on_linux() {
        assert_eq!(install_sigusr1(), cfg!(target_os = "linux"));
    }
}
