//! Flight recorder: anomaly-triggered crash-dump of recent telemetry.
//!
//! When the [`crate::anomaly::AnomalyDetector`] fires, the sampler
//! freezes the evidence *around* the event — the event-tracer ring,
//! the recent time-series window with its derived rates, and a full
//! engine snapshot — and writes it to a timestamped JSON file. The
//! point is the same as an aircraft flight recorder's: by the time a
//! human looks at a drop spike, the hot-path state that caused it is
//! long gone; the record preserves the surrounding seconds.
//!
//! Files are written by the *sampler* thread (never a capture thread,
//! never a signal handler) and named
//! `wirecap-flight-<unix_seconds>-<seq>.json`, where `seq` is a
//! process-wide counter so two engines (or two episodes in one
//! second) never collide.

use crate::snapshot::EngineSnapshot;
use crate::spans::SpanRecord;
use crate::timeseries::{Rates, SeriesSample};
use crate::trace::TraceEvent;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide flight-record sequence number (filename uniqueness).
static FLIGHT_SEQ: AtomicU64 = AtomicU64::new(0);

/// A serializable copy of one [`TraceEvent`] (owned `kind`, so the
/// record round-trips through JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Global sequence number of the event.
    pub seq: u64,
    /// Event timestamp, ns.
    pub ts_ns: u64,
    /// Queue whose capture path emitted the event.
    pub queue: u32,
    /// Event kind (see [`crate::trace::kind`]).
    pub kind: String,
    /// Chunk id within its pool.
    pub chunk: u32,
    /// Destination queue for placements.
    pub target: u32,
    /// Kind-specific payload.
    pub info: u64,
}

impl From<&TraceEvent> for FlightEvent {
    fn from(e: &TraceEvent) -> Self {
        FlightEvent {
            seq: e.seq,
            ts_ns: e.ts_ns,
            queue: e.queue,
            kind: e.kind.to_string(),
            chunk: e.chunk,
            target: e.target,
            info: e.info,
        }
    }
}

/// Everything frozen at the moment an anomaly fired.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlightRecord {
    /// Engine display name.
    pub engine: String,
    /// Human-readable firing condition (the `Display` of the anomaly).
    pub reason: String,
    /// Monotonic timestamp of the trigger, ns (see [`crate::clock`]).
    pub triggered_ts_ns: u64,
    /// The recent time-series window, oldest first.
    pub series: Vec<SeriesSample>,
    /// Rates derived from consecutive window samples.
    pub rates: Vec<Rates>,
    /// The frozen event-tracer ring, oldest first (empty when the
    /// tracer was disabled).
    pub events: Vec<FlightEvent>,
    /// The frozen completed-span ring, oldest first (empty when span
    /// tracing was off) — the per-stage timeline of the sampled chunks
    /// around the anomaly, same shape `/trace.json` renders.
    pub spans: Vec<SpanRecord>,
    /// Full engine snapshot at the trigger instant.
    pub snapshot: EngineSnapshot,
}

impl FlightRecord {
    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("FlightRecord serializes")
    }
}

/// Writes `record` under `dir` as
/// `wirecap-flight-<unix_seconds>-<seq>.json` and returns the path.
/// The directory is created if missing.
pub fn write_flight_record(dir: &Path, record: &FlightRecord) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let seq = FLIGHT_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("wirecap-flight-{unix_s}-{seq}.json"));
    std::fs::write(&path, record.to_json() + "\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::kind;

    fn record() -> FlightRecord {
        FlightRecord {
            engine: "test".into(),
            reason: "drop-rate spike: 0.5 > 0.01".into(),
            triggered_ts_ns: 123,
            series: vec![SeriesSample {
                ts_ns: 100,
                captured_packets: 10,
                ..Default::default()
            }],
            rates: vec![Rates {
                dt_ns: 100,
                captured_pps: 1e6,
                ..Default::default()
            }],
            events: vec![FlightEvent::from(&TraceEvent {
                seq: 0,
                ts_ns: 99,
                queue: 1,
                kind: kind::OFFLOAD,
                chunk: 7,
                target: 2,
                info: 40,
            })],
            spans: vec![SpanRecord {
                queue: 1,
                seq: 5,
                packets: 64,
                worker: Some(2),
                stage_deliver_ns: 300,
                ..Default::default()
            }],
            snapshot: EngineSnapshot {
                engine: "test".into(),
                tuning: None,
                queues: vec![],
                workers: vec![],
                copies: sim::stats::CopyMeter::default(),
                latency: sim::stats::LatencyStats::new(),
            },
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = record();
        let back: FlightRecord = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back.reason, r.reason);
        assert_eq!(back.series, r.series);
        assert_eq!(back.events, r.events);
        assert_eq!(back.events[0].kind, "offload");
        assert_eq!(back.spans, r.spans);
        assert_eq!(back.spans[0].worker, Some(2));
    }

    #[test]
    fn files_are_unique_and_parseable() {
        let dir = std::env::temp_dir().join(format!("wirecap-flight-test-{}", std::process::id()));
        let a = write_flight_record(&dir, &record()).unwrap();
        let b = write_flight_record(&dir, &record()).unwrap();
        assert_ne!(a, b, "sequence number keeps same-second files apart");
        let body = std::fs::read_to_string(&a).unwrap();
        let back: FlightRecord = serde_json::from_str(&body).unwrap();
        assert_eq!(back.engine, "test");
        std::fs::remove_dir_all(&dir).ok();
    }
}
