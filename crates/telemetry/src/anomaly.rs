//! Anomaly detection over the sampled telemetry series.
//!
//! Watches the [`crate::timeseries::Rates`] stream for the three
//! failure signatures the paper's evaluation is built around:
//!
//! * **drop-rate spike** — the interval drop rate exceeds a threshold
//!   (the engine is losing packets *now*, not historically);
//! * **sustained capture-queue depth** — the deepest capture queue has
//!   stayed above the buddy-offloading threshold T (in chunks) for a
//!   whole run of samples: offloading is saturated or disabled and
//!   delivery pressure is building;
//! * **offload storm** — buddies are absorbing chunks faster than a
//!   configured rate, the §4 signature of a pathologically skewed RSS
//!   split;
//! * **disk writer falling behind** — the capture-to-disk sink is
//!   shedding packets (its bounded handoff ring overflowed): the
//!   capture-and-save workload of §4 is degrading gracefully instead
//!   of losing packets silently;
//! * **tail-latency SLO regression** — the engine-wide p99.9
//!   capture-to-delivery latency exceeded the configured SLO: the hot
//!   working set has likely outgrown the cache budget the tuning mode
//!   sized for (DESIGN.md §4.16), and a flight record of the episode
//!   is worth keeping.
//!
//! Detection is hysteretic: a condition must hold for
//! [`AnomalyConfig::sustain_samples`] consecutive samples to fire, and
//! after firing the detector stays latched until the condition has
//! been clear for [`AnomalyConfig::clear_samples`] consecutive samples
//! — so one sustained episode produces exactly one
//! [`Anomaly`] (and one flight-recorder dump), never a dump-file
//! storm.

use crate::timeseries::Rates;
use std::fmt;

/// Detection thresholds. `None`/0 disables the corresponding check.
#[derive(Debug, Clone, Copy)]
pub struct AnomalyConfig {
    /// Fire when the interval drop rate exceeds this fraction.
    pub drop_rate_spike: Option<f64>,
    /// Fire when the deepest capture queue exceeds this many chunks
    /// (set from T × capture-queue capacity).
    pub queue_depth_limit: Option<u64>,
    /// Fire when the offload rate exceeds this many chunks/s.
    pub offload_storm_cps: Option<f64>,
    /// Fire when the disk sink sheds packets faster than this
    /// (packets/s) — the "writer falling behind" episode.
    pub disk_drop_pps: Option<f64>,
    /// Fire when the engine-wide p99.9 capture-to-delivery latency
    /// exceeds this many ns — the tail-latency SLO regression episode
    /// (set from the engine's tuning-mode latency budget).
    pub tail_latency_ns: Option<u64>,
    /// Consecutive violating samples required to fire.
    pub sustain_samples: u32,
    /// Consecutive clean samples required to re-arm after firing.
    pub clear_samples: u32,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            drop_rate_spike: Some(0.01),
            queue_depth_limit: None,
            offload_storm_cps: None,
            disk_drop_pps: Some(1.0),
            tail_latency_ns: None,
            sustain_samples: 2,
            clear_samples: 2,
        }
    }
}

/// A detected anomaly: which condition fired and the observed value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Anomaly {
    /// Drop rate exceeded the spike threshold.
    DropSpike {
        /// Observed interval drop rate.
        rate: f64,
        /// Configured threshold.
        limit: f64,
    },
    /// Deepest capture queue stayed above the depth limit.
    QueueDepth {
        /// Observed peak depth (chunks).
        depth: u64,
        /// Configured limit (chunks).
        limit: u64,
    },
    /// Offload rate exceeded the storm threshold.
    OffloadStorm {
        /// Observed offload rate (chunks/s).
        cps: f64,
        /// Configured threshold (chunks/s).
        limit: f64,
    },
    /// The disk writer fell behind and the sink shed packets.
    WriterBehind {
        /// Observed disk-drop rate (packets/s).
        pps: f64,
        /// Configured threshold (packets/s).
        limit: f64,
    },
    /// Engine-wide p99.9 capture-to-delivery latency exceeded the SLO.
    TailLatency {
        /// Observed p99.9 latency (ns).
        p999_ns: u64,
        /// Configured SLO (ns).
        limit: u64,
    },
}

impl fmt::Display for Anomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anomaly::DropSpike { rate, limit } => {
                write!(f, "drop-rate spike: {rate:.4} > {limit:.4}")
            }
            Anomaly::QueueDepth { depth, limit } => {
                write!(f, "sustained capture-queue depth: {depth} > {limit} chunks")
            }
            Anomaly::OffloadStorm { cps, limit } => {
                write!(f, "offload storm: {cps:.0} > {limit:.0} chunks/s")
            }
            Anomaly::WriterBehind { pps, limit } => {
                write!(
                    f,
                    "disk writer falling behind: shedding {pps:.0} > {limit:.0} packets/s"
                )
            }
            Anomaly::TailLatency { p999_ns, limit } => {
                write!(
                    f,
                    "tail-latency SLO regression: p99.9 {p999_ns} > {limit} ns"
                )
            }
        }
    }
}

/// Hysteretic detector state: one per sampled engine.
#[derive(Debug)]
pub struct AnomalyDetector {
    cfg: AnomalyConfig,
    /// Consecutive violating samples while armed.
    hot: u32,
    /// Consecutive clean samples while latched.
    cool: u32,
    /// True after firing, until `clear_samples` clean samples re-arm.
    latched: bool,
    fired: u64,
}

impl AnomalyDetector {
    /// Creates an armed detector.
    pub fn new(cfg: AnomalyConfig) -> Self {
        AnomalyDetector {
            cfg: AnomalyConfig {
                sustain_samples: cfg.sustain_samples.max(1),
                clear_samples: cfg.clear_samples.max(1),
                ..cfg
            },
            hot: 0,
            cool: 0,
            latched: false,
            fired: 0,
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &AnomalyConfig {
        &self.cfg
    }

    /// Total anomalies fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// The first violated condition for `r`, ignoring hysteresis.
    fn violation(&self, r: &Rates) -> Option<Anomaly> {
        if let Some(limit) = self.cfg.drop_rate_spike {
            if r.drop_rate > limit {
                return Some(Anomaly::DropSpike {
                    rate: r.drop_rate,
                    limit,
                });
            }
        }
        if let Some(limit) = self.cfg.queue_depth_limit {
            if r.queue_depth_peak > limit {
                return Some(Anomaly::QueueDepth {
                    depth: r.queue_depth_peak,
                    limit,
                });
            }
        }
        if let Some(limit) = self.cfg.offload_storm_cps {
            if r.offload_cps > limit {
                return Some(Anomaly::OffloadStorm {
                    cps: r.offload_cps,
                    limit,
                });
            }
        }
        if let Some(limit) = self.cfg.disk_drop_pps {
            if r.disk_drop_pps > limit {
                return Some(Anomaly::WriterBehind {
                    pps: r.disk_drop_pps,
                    limit,
                });
            }
        }
        if let Some(limit) = self.cfg.tail_latency_ns {
            if r.latency_p999_ns > limit {
                return Some(Anomaly::TailLatency {
                    p999_ns: r.latency_p999_ns,
                    limit,
                });
            }
        }
        None
    }

    /// Feeds one interval's rates. Returns `Some` exactly once per
    /// sustained episode: when a condition has held for
    /// `sustain_samples` consecutive samples and the detector is not
    /// already latched.
    pub fn observe(&mut self, r: &Rates) -> Option<Anomaly> {
        let violation = self.violation(r);
        if self.latched {
            match violation {
                Some(_) => self.cool = 0,
                None => {
                    self.cool += 1;
                    if self.cool >= self.cfg.clear_samples {
                        self.latched = false;
                        self.cool = 0;
                        self.hot = 0;
                    }
                }
            }
            return None;
        }
        match violation {
            Some(a) => {
                self.hot += 1;
                if self.hot >= self.cfg.sustain_samples {
                    self.latched = true;
                    self.cool = 0;
                    self.fired += 1;
                    Some(a)
                } else {
                    None
                }
            }
            None => {
                self.hot = 0;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drop_rates(rate: f64) -> Rates {
        Rates {
            dt_ns: 1_000_000,
            drop_rate: rate,
            ..Default::default()
        }
    }

    fn detector() -> AnomalyDetector {
        AnomalyDetector::new(AnomalyConfig {
            drop_rate_spike: Some(0.05),
            queue_depth_limit: None,
            offload_storm_cps: None,
            disk_drop_pps: None,
            tail_latency_ns: None,
            sustain_samples: 3,
            clear_samples: 2,
        })
    }

    #[test]
    fn fires_exactly_once_per_sustained_episode() {
        let mut d = detector();
        // Episode 1: 10 violating samples → exactly one anomaly, on
        // the third (sustain_samples) violating sample.
        let fires: Vec<bool> = (0..10)
            .map(|_| d.observe(&drop_rates(0.2)).is_some())
            .collect();
        assert_eq!(fires.iter().filter(|f| **f).count(), 1, "{fires:?}");
        assert!(fires[2], "fires on the sustain_samples-th sample");
        // Clears: one clean sample is not enough to re-arm…
        assert!(d.observe(&drop_rates(0.0)).is_none());
        // …and a re-violation during cool-down does not fire.
        assert!(d.observe(&drop_rates(0.2)).is_none());
        assert!(d.observe(&drop_rates(0.0)).is_none());
        assert!(d.observe(&drop_rates(0.0)).is_none());
        // Episode 2 after a full clear: fires exactly once again.
        let fires: Vec<bool> = (0..6)
            .map(|_| d.observe(&drop_rates(0.9)).is_some())
            .collect();
        assert_eq!(fires.iter().filter(|f| **f).count(), 1, "{fires:?}");
        assert_eq!(d.fired(), 2);
    }

    #[test]
    fn short_blips_below_sustain_never_fire() {
        let mut d = detector();
        for _ in 0..20 {
            // Two violating samples, then a clean one: the run never
            // reaches sustain_samples = 3.
            assert!(d.observe(&drop_rates(0.5)).is_none());
            assert!(d.observe(&drop_rates(0.5)).is_none());
            assert!(d.observe(&drop_rates(0.0)).is_none());
        }
        assert_eq!(d.fired(), 0);
    }

    #[test]
    fn queue_depth_and_offload_conditions_fire() {
        let mut d = AnomalyDetector::new(AnomalyConfig {
            drop_rate_spike: None,
            queue_depth_limit: Some(10),
            offload_storm_cps: None,
            disk_drop_pps: None,
            tail_latency_ns: None,
            sustain_samples: 1,
            clear_samples: 1,
        });
        let r = Rates {
            queue_depth_peak: 50,
            ..Default::default()
        };
        assert_eq!(
            d.observe(&r),
            Some(Anomaly::QueueDepth {
                depth: 50,
                limit: 10
            })
        );
        let mut d = AnomalyDetector::new(AnomalyConfig {
            drop_rate_spike: None,
            queue_depth_limit: None,
            offload_storm_cps: Some(100.0),
            disk_drop_pps: None,
            tail_latency_ns: None,
            sustain_samples: 1,
            clear_samples: 1,
        });
        let r = Rates {
            offload_cps: 5_000.0,
            ..Default::default()
        };
        assert!(matches!(d.observe(&r), Some(Anomaly::OffloadStorm { .. })));
        assert!(format!("{}", d.violation(&r).unwrap()).contains("offload storm"));
    }

    #[test]
    fn writer_behind_condition_fires() {
        let mut d = AnomalyDetector::new(AnomalyConfig {
            drop_rate_spike: None,
            queue_depth_limit: None,
            offload_storm_cps: None,
            disk_drop_pps: Some(10.0),
            tail_latency_ns: None,
            sustain_samples: 1,
            clear_samples: 1,
        });
        let calm = Rates {
            disk_drop_pps: 0.0,
            ..Default::default()
        };
        assert!(d.observe(&calm).is_none(), "no drops, no episode");
        let behind = Rates {
            disk_drop_pps: 2_500.0,
            ..Default::default()
        };
        assert_eq!(
            d.observe(&behind),
            Some(Anomaly::WriterBehind {
                pps: 2_500.0,
                limit: 10.0
            })
        );
        assert!(format!("{}", d.violation(&behind).unwrap()).contains("disk writer falling behind"));
    }

    #[test]
    fn tail_latency_condition_is_hysteretic() {
        let mut d = AnomalyDetector::new(AnomalyConfig {
            drop_rate_spike: None,
            queue_depth_limit: None,
            offload_storm_cps: None,
            disk_drop_pps: None,
            tail_latency_ns: Some(1_000_000),
            sustain_samples: 2,
            clear_samples: 2,
        });
        let slow = Rates {
            latency_p999_ns: 5_000_000,
            ..Default::default()
        };
        let fast = Rates {
            latency_p999_ns: 200_000,
            ..Default::default()
        };
        assert!(d.observe(&fast).is_none(), "within SLO");
        assert!(d.observe(&slow).is_none(), "first violation: not sustained");
        assert_eq!(
            d.observe(&slow),
            Some(Anomaly::TailLatency {
                p999_ns: 5_000_000,
                limit: 1_000_000
            }),
            "fires once sustained"
        );
        assert!(d.observe(&slow).is_none(), "latched: no dump storm");
        assert!(format!("{}", d.violation(&slow).unwrap()).contains("tail-latency SLO"));
    }
}
