//! Sampled per-chunk lifecycle spans and the worker time-state
//! profiler.
//!
//! The end-to-end `latency_ns` histogram says *how long* capture →
//! delivery took, but not *where* the time went. This module adds the
//! decomposition: engines stamp a sampled chunk (1-in-N per queue,
//! `WireCapConfig::span_sample_n`, 0 = off) at every ownership-transfer
//! boundary it crosses — seal, ring publish, claim-or-steal
//! acquisition, delivery start/end, disk handoff, disk write — using
//! the amortized [`crate::clock`] seam. The stamps travel *inside* the
//! engine's chunk handle (a plain [`SpanStamps`] value, moved with the
//! chunk through rings, deques and claim queues; no shared state, no
//! synchronization), and are folded into a [`SpanRecord`] at the same
//! point the end-to-end latency is recorded.
//!
//! Completed records land in a bounded [`SpanRing`] (newest-wins, the
//! same retention shape as [`crate::trace::EventTracer`]) and feed
//! three consumers:
//!
//! * per-stage `Log2Histogram`s in the snapshot / Prometheus schema
//!   (`stage_backend_ns`, `stage_queue_wait_ns`, `stage_claim_ns`,
//!   `stage_reorder_ns`, `stage_deliver_ns`, `stage_disk_ns`);
//! * the `/trace.json` scrape route, which renders the ring as Chrome
//!   trace-event JSON ([`chrome_trace_json`]) loadable in
//!   `chrome://tracing` / Perfetto — one track per queue, one per pool
//!   worker;
//! * anomaly flight records, which freeze the ring next to the event
//!   tracer so a drop-spike episode ships with its timeline.
//!
//! Cost contract: an unsampled chunk pays exactly one branch at seal.
//! A sampled chunk pays a handful of `u64` stores at boundaries it was
//! already crossing plus one short ring lock at completion — once per
//! *chunk*, never per packet. The `span_tracing` entry of
//! `BENCH_hotpath.json` keeps the whole feature ≤ 3% in
//! `scripts/check.sh`.
//!
//! The worker time-state profiler ([`WorkerState`]) is the dual view:
//! instead of following a chunk through stages, it follows a pool
//! worker through the adaptive-polling ladder, accounting wall time
//! into spin / yield / park / claim / deliver / steal buckets. Workers
//! register with the [`crate::Registry`] at pool start and account
//! transitions single-writer; snapshots read the buckets relaxed.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default retained completed spans when the engine does not size the
/// ring explicitly.
pub const DEFAULT_SPAN_CAPACITY: usize = 1024;

/// In-flight boundary stamps, carried *by value* inside an engine's
/// chunk handle from seal to recycle. All stamps are
/// [`crate::clock::mono_ns`] values; `0` means "boundary not crossed"
/// (e.g. no disk stage on a count-only consumer).
///
/// The carrier is deliberately dumb: plain `u64`s, no atomics. A chunk
/// is owned by exactly one thread at a time — the same ownership
/// discipline that makes the hot path safe makes these stamps safe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStamps {
    /// Chunk sealed by the capture thread (span start).
    pub sealed_ns: u64,
    /// Chunk published to its delivery ring (end of the backend stage).
    pub published_ns: u64,
    /// The winning acquisition attempt *began* (claim-round start in
    /// concurrent mode; equals `acquired_ns` on pop/steal paths).
    pub acquire_started_ns: u64,
    /// Ownership transferred to a consumer or pool worker.
    pub acquired_ns: u64,
    /// Delivery (handler) began. On the in-order path this is after
    /// the reorder buffer released the chunk.
    pub deliver_start_ns: u64,
    /// Delivery (handler) finished.
    pub deliver_end_ns: u64,
    /// Handed to the disk writer's bounded queue; 0 off the disk path.
    pub disk_handoff_ns: u64,
    /// Disk write batch committed (write syscall done); 0 off the disk
    /// path.
    pub disk_write_ns: u64,
}

/// One completed, sampled chunk lifetime with its per-stage
/// decomposition. Durations are computed with saturating subtraction
/// from the boundary stamps, so they are non-negative by construction
/// and partition (a subset of) the end-to-end interval.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Home queue of the chunk.
    pub queue: u32,
    /// Per-queue chunk sequence number (the sampling key).
    pub seq: u64,
    /// Packets the chunk carried.
    pub packets: u32,
    /// Pool worker that delivered it; `None` for the per-queue
    /// consumer and the disk path.
    pub worker: Option<u32>,
    /// Delivered by a worker that did not own the home queue.
    pub stolen: bool,
    /// Seal stamp (`mono_ns`), the span's position on the timeline.
    pub sealed_ns: u64,
    /// Seal → recycle (or the engine's recorded end), ns.
    pub end_to_end_ns: u64,
    /// Seal → ring publish: capture-side residency.
    pub stage_backend_ns: u64,
    /// Publish → winning acquisition attempt: time waiting in the
    /// ring/deque.
    pub stage_queue_wait_ns: u64,
    /// Winning acquisition attempt → ownership (claim-CAS window;
    /// 0 on pop/steal paths).
    pub stage_claim_ns: u64,
    /// Ownership → delivery start (reorder-buffer residency; ~0 when
    /// in-order delivery is off).
    pub stage_reorder_ns: u64,
    /// Delivery start → end: handler time.
    pub stage_deliver_ns: u64,
    /// Disk handoff → write commit; 0 off the disk path.
    pub stage_disk_ns: u64,
}

impl SpanRecord {
    /// Folds boundary stamps into a completed record. `end_ns` is the
    /// same timestamp the engine records into `latency_ns`, so the
    /// stage sum can be compared against the end-to-end histogram.
    pub fn from_stamps(
        queue: u32,
        seq: u64,
        packets: u32,
        worker: Option<u32>,
        stolen: bool,
        s: &SpanStamps,
        end_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            queue,
            seq,
            packets,
            worker,
            stolen,
            sealed_ns: s.sealed_ns,
            end_to_end_ns: end_ns.saturating_sub(s.sealed_ns),
            stage_backend_ns: s.published_ns.saturating_sub(s.sealed_ns),
            stage_queue_wait_ns: s.acquire_started_ns.saturating_sub(s.published_ns),
            stage_claim_ns: s.acquired_ns.saturating_sub(s.acquire_started_ns),
            stage_reorder_ns: s.deliver_start_ns.saturating_sub(s.acquired_ns),
            stage_deliver_ns: s.deliver_end_ns.saturating_sub(s.deliver_start_ns),
            stage_disk_ns: s.disk_write_ns.saturating_sub(s.disk_handoff_ns),
        }
    }

    /// Sum of all stage durations — ≤ `end_to_end_ns` whenever the
    /// stamps were taken in pipeline order from the one monotonic
    /// clock.
    pub fn stage_sum_ns(&self) -> u64 {
        self.stage_backend_ns
            + self.stage_queue_wait_ns
            + self.stage_claim_ns
            + self.stage_reorder_ns
            + self.stage_deliver_ns
            + self.stage_disk_ns
    }
}

/// Bounded ring of completed [`SpanRecord`]s, newest-wins. Pushes come
/// from delivery-side threads once per *sampled chunk* — far off the
/// per-packet path — so a short mutex hold is cheaper than the
/// padded-slot machinery a true per-packet ring would need.
#[derive(Debug)]
pub struct SpanRing {
    ring: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    buf: Vec<SpanRecord>,
    capacity: usize,
    next: usize,
}

impl SpanRing {
    /// A ring retaining up to `capacity` completed spans (min 1).
    pub fn with_capacity(capacity: usize) -> SpanRing {
        let capacity = capacity.max(1);
        SpanRing {
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity),
                capacity,
                next: 0,
            }),
        }
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.ring.lock().expect("span ring poisoned").capacity
    }

    /// Records a completed span, evicting the oldest when full.
    pub fn push(&self, record: SpanRecord) {
        let mut r = self.ring.lock().expect("span ring poisoned");
        if r.buf.len() < r.capacity {
            r.buf.push(record);
        } else {
            let at = r.next;
            r.buf[at] = record;
        }
        r.next = (r.next + 1) % r.capacity;
    }

    /// Retained spans, oldest first.
    pub fn records(&self) -> Vec<SpanRecord> {
        let r = self.ring.lock().expect("span ring poisoned");
        if r.buf.len() < r.capacity {
            return r.buf.clone();
        }
        let mut out = Vec::with_capacity(r.buf.len());
        out.extend_from_slice(&r.buf[r.next..]);
        out.extend_from_slice(&r.buf[..r.next]);
        out
    }

    /// Spans retained right now.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("span ring poisoned").buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SpanRing {
    fn default() -> Self {
        SpanRing::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

/// The wall-time buckets a pool worker's life divides into. Spin,
/// yield and park are the three rungs of the adaptive-polling ladder;
/// claim, deliver and steal are the working states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerTimeState {
    /// Busy-spinning on the first ladder rung.
    Spin,
    /// Yielding the core on the middle rung.
    Yield,
    /// Parked on the wakeup gate.
    Park,
    /// Attempting claim-CAS acquisitions (concurrent queue mode).
    Claim,
    /// Running the delivery handler (includes recycle bookkeeping).
    Deliver,
    /// Probing other workers' deques for work to steal.
    Steal,
}

/// Per-worker wall-time accounting across the ladder and working
/// states. Buckets are written by the owning worker only (plain
/// relaxed adds at state transitions — a handful per loop iteration,
/// never per packet) and read relaxed by snapshots.
#[derive(Debug, Default)]
pub struct WorkerState {
    /// Pool worker index.
    pub worker: u32,
    spin_ns: AtomicU64,
    yield_ns: AtomicU64,
    park_ns: AtomicU64,
    claim_ns: AtomicU64,
    deliver_ns: AtomicU64,
    steal_ns: AtomicU64,
}

impl WorkerState {
    /// Accounting state for pool worker `worker`.
    pub fn new(worker: u32) -> WorkerState {
        WorkerState {
            worker,
            ..Default::default()
        }
    }

    /// Adds `ns` of wall time to `state`'s bucket.
    pub fn account(&self, state: WorkerTimeState, ns: u64) {
        let bucket = match state {
            WorkerTimeState::Spin => &self.spin_ns,
            WorkerTimeState::Yield => &self.yield_ns,
            WorkerTimeState::Park => &self.park_ns,
            WorkerTimeState::Claim => &self.claim_ns,
            WorkerTimeState::Deliver => &self.deliver_ns,
            WorkerTimeState::Steal => &self.steal_ns,
        };
        bucket.fetch_add(ns, Ordering::Relaxed);
    }

    /// Point-in-time copy of the buckets.
    pub fn snapshot(&self) -> WorkerTelemetry {
        WorkerTelemetry {
            worker: self.worker,
            spin_ns: self.spin_ns.load(Ordering::Relaxed),
            yield_ns: self.yield_ns.load(Ordering::Relaxed),
            park_ns: self.park_ns.load(Ordering::Relaxed),
            claim_ns: self.claim_ns.load(Ordering::Relaxed),
            deliver_ns: self.deliver_ns.load(Ordering::Relaxed),
            steal_ns: self.steal_ns.load(Ordering::Relaxed),
        }
    }
}

/// Serializable point-in-time copy of one worker's time-state buckets,
/// embedded in [`crate::EngineSnapshot::workers`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerTelemetry {
    /// Pool worker index.
    pub worker: u32,
    /// Wall time busy-spinning, ns.
    pub spin_ns: u64,
    /// Wall time yielding, ns.
    pub yield_ns: u64,
    /// Wall time parked on the wakeup gate, ns.
    pub park_ns: u64,
    /// Wall time in claim-CAS acquisition, ns.
    pub claim_ns: u64,
    /// Wall time running delivery handlers, ns.
    pub deliver_ns: u64,
    /// Wall time probing steal targets, ns.
    pub steal_ns: u64,
}

/// Shorthand for one object node in the trace-event tree.
fn obj(fields: Vec<(&str, serde::Value)>) -> serde::Value {
    serde::Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// One trace event with the four fields every consumer requires
/// (`ph`/`ts`/`pid`/`tid`) plus the given extras.
fn event(
    ph: &str,
    ts_us: f64,
    pid: u64,
    tid: u64,
    extra: Vec<(&str, serde::Value)>,
) -> serde::Value {
    let mut fields = vec![
        ("ph", serde::Value::Str(ph.to_string())),
        ("ts", serde::Value::F64(ts_us)),
        ("pid", serde::Value::U64(pid)),
        ("tid", serde::Value::U64(tid)),
    ];
    fields.extend(extra);
    obj(fields)
}

/// A `"M"` metadata event naming a process or thread track.
fn meta_event(pid: u64, tid: u64, kind: &str, name: &str) -> serde::Value {
    event(
        "M",
        0.0,
        pid,
        tid,
        vec![
            ("name", serde::Value::Str(kind.to_string())),
            (
                "args",
                obj(vec![("name", serde::Value::Str(name.to_string()))]),
            ),
        ],
    )
}

/// Renders completed spans plus worker time-state totals as Chrome
/// trace-event JSON: a plain array of event objects, loadable directly
/// in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
///
/// Track layout: `pid 1` carries one track per *queue* (backend /
/// queue-wait / claim / reorder / disk stages, `tid` = queue id);
/// `pid 2` carries one track per pool *worker* (deliver stages, `tid`
/// = worker id; per-queue consumer deliveries stay on the queue
/// track). Worker bucket totals are emitted as counter events on the
/// worker track. Timestamps are `mono_ns / 1000` (the format counts
/// microseconds).
pub fn chrome_trace_json(spans: &[SpanRecord], workers: &[WorkerTelemetry]) -> String {
    let mut events: Vec<serde::Value> = Vec::new();
    events.push(meta_event(1, 0, "process_name", "wirecap queues"));
    events.push(meta_event(2, 0, "process_name", "wirecap workers"));
    let mut named_queues = std::collections::BTreeSet::new();
    for w in workers {
        events.push(meta_event(
            2,
            u64::from(w.worker),
            "thread_name",
            &format!("worker {}", w.worker),
        ));
    }
    let complete =
        |pid: u64, tid: u64, name: &str, cat: &str, ts_ns: u64, dur_ns: u64, s: &SpanRecord| {
            event(
                "X",
                ts_ns as f64 / 1000.0,
                pid,
                tid,
                vec![
                    ("dur", serde::Value::F64(dur_ns.max(1) as f64 / 1000.0)),
                    ("name", serde::Value::Str(name.to_string())),
                    ("cat", serde::Value::Str(cat.to_string())),
                    (
                        "args",
                        obj(vec![
                            ("queue", serde::Value::U64(u64::from(s.queue))),
                            ("seq", serde::Value::U64(s.seq)),
                            ("packets", serde::Value::U64(u64::from(s.packets))),
                            ("stolen", serde::Value::Bool(s.stolen)),
                        ]),
                    ),
                ],
            )
        };
    for s in spans {
        if named_queues.insert(s.queue) {
            events.push(meta_event(
                1,
                u64::from(s.queue),
                "thread_name",
                &format!("queue {}", s.queue),
            ));
        }
        let q = u64::from(s.queue);
        let mut at = s.sealed_ns;
        for (name, dur) in [
            ("backend", s.stage_backend_ns),
            ("queue_wait", s.stage_queue_wait_ns),
            ("claim", s.stage_claim_ns),
            ("reorder", s.stage_reorder_ns),
        ] {
            if dur > 0 {
                events.push(complete(1, q, name, "pipeline", at, dur, s));
            }
            at += dur;
        }
        if s.stage_deliver_ns > 0 {
            match s.worker {
                Some(w) => events.push(complete(
                    2,
                    u64::from(w),
                    "deliver",
                    "pipeline",
                    at,
                    s.stage_deliver_ns,
                    s,
                )),
                None => events.push(complete(
                    1,
                    q,
                    "deliver",
                    "pipeline",
                    at,
                    s.stage_deliver_ns,
                    s,
                )),
            }
        }
        at += s.stage_deliver_ns;
        if s.stage_disk_ns > 0 {
            events.push(complete(1, q, "disk", "disk", at, s.stage_disk_ns, s));
        }
    }
    for w in workers {
        events.push(event(
            "C",
            0.0,
            2,
            u64::from(w.worker),
            vec![
                (
                    "name",
                    serde::Value::Str(format!("worker {} time-state (ns)", w.worker)),
                ),
                (
                    "args",
                    obj(vec![
                        ("spin", serde::Value::U64(w.spin_ns)),
                        ("yield", serde::Value::U64(w.yield_ns)),
                        ("park", serde::Value::U64(w.park_ns)),
                        ("claim", serde::Value::U64(w.claim_ns)),
                        ("deliver", serde::Value::U64(w.deliver_ns)),
                        ("steal", serde::Value::U64(w.steal_ns)),
                    ]),
                ),
            ],
        ));
    }
    serde_json::to_string_pretty(&serde::Value::Arr(events)).expect("trace events serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamps() -> SpanStamps {
        SpanStamps {
            sealed_ns: 1_000,
            published_ns: 1_200,
            acquire_started_ns: 1_900,
            acquired_ns: 2_000,
            deliver_start_ns: 2_050,
            deliver_end_ns: 2_500,
            disk_handoff_ns: 0,
            disk_write_ns: 0,
        }
    }

    #[test]
    fn stages_decompose_the_end_to_end_interval() {
        let r = SpanRecord::from_stamps(3, 42, 64, Some(1), true, &stamps(), 2_600);
        assert_eq!(r.stage_backend_ns, 200);
        assert_eq!(r.stage_queue_wait_ns, 700);
        assert_eq!(r.stage_claim_ns, 100);
        assert_eq!(r.stage_reorder_ns, 50);
        assert_eq!(r.stage_deliver_ns, 450);
        assert_eq!(r.stage_disk_ns, 0);
        assert_eq!(r.end_to_end_ns, 1_600);
        assert!(r.stage_sum_ns() <= r.end_to_end_ns);
    }

    #[test]
    fn out_of_order_stamps_saturate_to_zero() {
        let mut s = stamps();
        s.published_ns = 500; // "before" the seal
        let r = SpanRecord::from_stamps(0, 0, 1, None, false, &s, 2_600);
        assert_eq!(r.stage_backend_ns, 0, "saturating, never negative");
    }

    #[test]
    fn ring_retains_newest_and_reads_oldest_first() {
        let ring = SpanRing::with_capacity(3);
        assert!(ring.is_empty());
        for seq in 0..5u64 {
            ring.push(SpanRecord {
                seq,
                ..Default::default()
            });
        }
        let got: Vec<u64> = ring.records().iter().map(|r| r.seq).collect();
        assert_eq!(got, vec![2, 3, 4]);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn worker_state_accounts_into_named_buckets() {
        let w = WorkerState::new(7);
        w.account(WorkerTimeState::Spin, 10);
        w.account(WorkerTimeState::Spin, 5);
        w.account(WorkerTimeState::Deliver, 100);
        w.account(WorkerTimeState::Steal, 1);
        let t = w.snapshot();
        assert_eq!(t.worker, 7);
        assert_eq!(t.spin_ns, 15);
        assert_eq!(t.deliver_ns, 100);
        assert_eq!(t.steal_ns, 1);
        assert_eq!(t.park_ns, 0);
    }

    #[test]
    fn chrome_trace_is_an_array_of_events_with_required_fields() {
        let r = SpanRecord::from_stamps(1, 8, 32, Some(0), false, &stamps(), 2_600);
        let d = SpanRecord {
            stage_disk_ns: 900,
            ..SpanRecord::from_stamps(0, 9, 16, None, false, &stamps(), 3_600)
        };
        let w = WorkerTelemetry {
            worker: 0,
            spin_ns: 5,
            ..Default::default()
        };
        let body = chrome_trace_json(&[r, d], &[w]);
        let parsed: serde::Value = serde_json::from_str(&body).unwrap();
        let events = match parsed {
            serde::Value::Arr(evs) => evs,
            other => panic!("expected array, got {other:?}"),
        };
        assert!(!events.is_empty());
        for e in &events {
            assert!(matches!(e, serde::Value::Obj(_)), "expected object: {e:?}");
            for key in ["ph", "ts", "pid", "tid"] {
                assert!(e.field(key).is_some(), "missing {key}: {e:?}");
            }
        }
        // Both the queue track and the worker track are present.
        assert!(body.contains("wirecap queues"));
        assert!(body.contains("wirecap workers"));
        assert!(body.contains("\"deliver\""));
        assert!(body.contains("\"disk\""));
    }
}
