//! The periodic telemetry sampler thread.
//!
//! One [`Sampler`] per observed engine: every
//! [`SamplerConfig::interval`] it takes an [`EngineSnapshot`] through
//! the engine's [`Observable`] handle, condenses it into a
//! [`SeriesSample`], pushes it into the fixed-capacity
//! [`TimeSeriesRing`], derives [`Rates`] for the new interval, and
//! feeds them to the [`AnomalyDetector`]. A fired anomaly freezes a
//! [`crate::flight::FlightRecord`] (time-series window + rates +
//! event-tracer ring + full snapshot) to disk.
//!
//! The sampler also services [`crate::dump`] requests: the `SIGUSR1`
//! handler only sets an atomic flag (async-signal-safe); this thread
//! polls [`crate::dump::take_dump_request`] every tick and performs
//! the rendering and I/O here, off both the signal context and the
//! capture hot path — and unlike the engine-loop fallback poll, it
//! fires even while capture threads are saturated.
//!
//! Everything the sampler does is reader-side: engines pay nothing for
//! being observed beyond the relaxed counter loads a snapshot already
//! costs.

use crate::anomaly::{AnomalyConfig, AnomalyDetector};
use crate::clock;
use crate::flight::{write_flight_record, FlightEvent, FlightRecord};
use crate::snapshot::EngineSnapshot;
use crate::spans::SpanRecord;
use crate::timeseries::{rates_between, Rates, SeriesSample, TimeSeriesRing};
use crate::trace::TraceEvent;
use crate::{dump, timeseries};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A telemetry-observable engine: anything that can produce the
/// unified snapshot (and, optionally, its event-tracer ring) on
/// demand, from any thread.
pub trait Observable: Send + Sync {
    /// A full point-in-time snapshot.
    fn snapshot(&self) -> EngineSnapshot;

    /// The retained event-tracer ring, oldest first. Engines without a
    /// tracer (or with it disabled) return an empty vector.
    fn trace_events(&self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// The retained completed-span ring (sampled chunk lifecycles),
    /// oldest first. Engines without span tracing (or with
    /// `span_sample_n == 0`) return an empty vector.
    fn spans(&self) -> Vec<SpanRecord> {
        Vec::new()
    }
}

/// Sampler configuration.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Sampling interval.
    pub interval: Duration,
    /// Time-series ring capacity (samples retained).
    pub capacity: usize,
    /// Anomaly thresholds; `None` disables detection entirely.
    pub anomaly: Option<AnomalyConfig>,
    /// Where flight records are written; `None` counts anomalies but
    /// writes nothing.
    pub flight_dir: Option<PathBuf>,
    /// Samples included in a flight record's series window.
    pub flight_window: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            interval: Duration::from_millis(100),
            capacity: 600,
            anomaly: Some(AnomalyConfig::default()),
            flight_dir: None,
            flight_window: 64,
        }
    }
}

/// State shared between the sampler thread and readers (scrape
/// endpoint, tests, the engine's own accessors).
#[derive(Debug)]
pub struct SamplerCore {
    ring: Mutex<TimeSeriesRing>,
    samples: AtomicU64,
    anomalies: AtomicU64,
    dumps_served: AtomicU64,
    flights: Mutex<Vec<PathBuf>>,
}

impl SamplerCore {
    fn new(capacity: usize) -> Self {
        SamplerCore {
            ring: Mutex::new(TimeSeriesRing::with_capacity(capacity)),
            samples: AtomicU64::new(0),
            anomalies: AtomicU64::new(0),
            dumps_served: AtomicU64::new(0),
            flights: Mutex::new(Vec::new()),
        }
    }

    /// The retained samples, oldest first.
    pub fn series(&self) -> Vec<SeriesSample> {
        self.ring.lock().expect("sampler ring poisoned").window()
    }

    /// Rates over every retained consecutive sample pair.
    pub fn rates(&self) -> Vec<Rates> {
        self.ring.lock().expect("sampler ring poisoned").rates()
    }

    /// Rates over the most recent interval.
    pub fn last_rates(&self) -> Option<Rates> {
        self.ring
            .lock()
            .expect("sampler ring poisoned")
            .last_rates()
    }

    /// Samples taken so far.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Anomalies fired so far (episodes, not violating samples).
    pub fn anomalies(&self) -> u64 {
        self.anomalies.load(Ordering::Relaxed)
    }

    /// SIGUSR1/on-demand dumps this sampler has serviced.
    pub fn dumps_served(&self) -> u64 {
        self.dumps_served.load(Ordering::Relaxed)
    }

    /// Flight-record files written so far.
    pub fn flight_records(&self) -> Vec<PathBuf> {
        self.flights.lock().expect("flight list poisoned").clone()
    }
}

/// The per-tick sampling logic, separated from the thread so tests
/// (and single-threaded harnesses) can drive it synchronously.
pub struct SamplerState {
    observer: Arc<dyn Observable>,
    cfg: SamplerConfig,
    core: Arc<SamplerCore>,
    detector: Option<AnomalyDetector>,
}

impl SamplerState {
    /// Creates sampler state over `observer`.
    pub fn new(observer: Arc<dyn Observable>, cfg: SamplerConfig) -> Self {
        clock::init();
        let core = Arc::new(SamplerCore::new(cfg.capacity));
        SamplerState {
            detector: cfg.anomaly.map(AnomalyDetector::new),
            observer,
            cfg,
            core,
        }
    }

    /// The shared reader-side state.
    pub fn core(&self) -> Arc<SamplerCore> {
        Arc::clone(&self.core)
    }

    /// Takes one sample: snapshot → series push → rates → anomaly
    /// check → flight record. Also services pending dump requests.
    /// Called from the sampler thread every interval, or directly by
    /// tests.
    pub fn tick(&mut self) {
        let snap = self.observer.snapshot();
        if dump::take_dump_request() {
            dump::dump_snapshot(&snap);
            self.core.dumps_served.fetch_add(1, Ordering::Relaxed);
        }
        let ts_ns = clock::mono_ns();
        let sample = SeriesSample::from_snapshot(ts_ns, &snap);
        let rates = {
            let mut ring = self.core.ring.lock().expect("sampler ring poisoned");
            let prev = ring.latest().copied();
            ring.push(sample);
            prev.and_then(|p| rates_between(&p, &sample))
        };
        self.core.samples.fetch_add(1, Ordering::Relaxed);
        let (Some(det), Some(r)) = (self.detector.as_mut(), rates.as_ref()) else {
            return;
        };
        let Some(anomaly) = det.observe(r) else {
            return;
        };
        self.core.anomalies.fetch_add(1, Ordering::Relaxed);
        let Some(dir) = self.cfg.flight_dir.as_deref() else {
            return;
        };
        let series = {
            let ring = self.core.ring.lock().expect("sampler ring poisoned");
            ring.tail(self.cfg.flight_window)
        };
        let rates_window = series
            .windows(2)
            .filter_map(|p| timeseries::rates_between(&p[0], &p[1]))
            .collect();
        let record = FlightRecord {
            engine: snap.engine.clone(),
            reason: anomaly.to_string(),
            triggered_ts_ns: ts_ns,
            series,
            rates: rates_window,
            events: self
                .observer
                .trace_events()
                .iter()
                .map(FlightEvent::from)
                .collect(),
            spans: self.observer.spans(),
            snapshot: snap,
        };
        match write_flight_record(dir, &record) {
            Ok(path) => {
                eprintln!(
                    "wirecap telemetry: anomaly ({}) — flight record {}",
                    record.reason,
                    path.display()
                );
                self.core
                    .flights
                    .lock()
                    .expect("flight list poisoned")
                    .push(path);
            }
            Err(e) => eprintln!("wirecap telemetry: writing flight record: {e}"),
        }
    }
}

/// Handle to a running sampler thread. Dropping (or calling
/// [`Sampler::stop`]) joins the thread.
pub struct Sampler {
    core: Arc<SamplerCore>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("samples", &self.core.samples())
            .field("anomalies", &self.core.anomalies())
            .finish()
    }
}

impl Sampler {
    /// Spawns the sampler thread over `observer`.
    pub fn start(observer: Arc<dyn Observable>, cfg: SamplerConfig) -> Self {
        let interval = cfg.interval.max(Duration::from_millis(1));
        let mut state = SamplerState::new(observer, cfg);
        let core = state.core();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("wirecap-sampler".into())
            .spawn(move || {
                let mut next = Instant::now() + interval;
                loop {
                    state.tick();
                    loop {
                        if stop_flag.load(Ordering::Relaxed) {
                            // Final tick so shutdown-adjacent counts are
                            // visible in the series.
                            state.tick();
                            return;
                        }
                        let now = Instant::now();
                        if now >= next {
                            break;
                        }
                        std::thread::sleep((next - now).min(Duration::from_millis(2)));
                    }
                    next = Instant::now().max(next + interval);
                }
            })
            .expect("spawning sampler thread");
        Sampler {
            core,
            stop,
            thread: Some(thread),
        }
    }

    /// The shared reader-side state (series, rates, counts).
    pub fn core(&self) -> Arc<SamplerCore> {
        Arc::clone(&self.core)
    }

    /// Stops and joins the sampler thread (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            t.join().expect("sampler thread panicked");
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::AnomalyConfig;
    use crate::snapshot::QueueTelemetry;
    use std::sync::atomic::AtomicU64;

    /// A scripted engine: each snapshot advances counters by the
    /// configured step, with an optional drop step after a trigger
    /// point.
    struct FakeEngine {
        calls: AtomicU64,
        drop_from: u64,
    }

    impl Observable for FakeEngine {
        fn snapshot(&self) -> EngineSnapshot {
            let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
            let mut q = QueueTelemetry::empty(0);
            q.captured_packets = n * 1_000;
            q.delivered_packets = n * 1_000;
            if n >= self.drop_from {
                q.capture_drop_packets = (n - self.drop_from + 1) * 500;
            }
            EngineSnapshot {
                engine: "fake".into(),
                tuning: None,
                queues: vec![q],
                workers: Vec::new(),
                copies: sim::stats::CopyMeter::default(),
                latency: sim::stats::LatencyStats::new(),
            }
        }

        fn trace_events(&self) -> Vec<TraceEvent> {
            vec![TraceEvent {
                seq: 7,
                ts_ns: 1,
                queue: 0,
                kind: crate::trace::kind::CAPTURE,
                chunk: 3,
                target: 0,
                info: 64,
            }]
        }

        fn spans(&self) -> Vec<SpanRecord> {
            vec![SpanRecord {
                queue: 0,
                seq: 11,
                stage_deliver_ns: 500,
                ..Default::default()
            }]
        }
    }

    fn ticked_state(cfg: SamplerConfig, drop_from: u64, ticks: u32) -> SamplerState {
        let mut st = SamplerState::new(
            Arc::new(FakeEngine {
                calls: AtomicU64::new(0),
                drop_from,
            }),
            cfg,
        );
        for _ in 0..ticks {
            st.tick();
            // Distinct mono_ns timestamps between ticks.
            std::thread::sleep(Duration::from_millis(1));
        }
        st
    }

    #[test]
    fn sampler_builds_series_and_rates() {
        let cfg = SamplerConfig {
            anomaly: None,
            capacity: 8,
            ..Default::default()
        };
        let st = ticked_state(cfg, u64::MAX, 5);
        let core = st.core();
        assert_eq!(core.samples(), 5);
        assert_eq!(core.series().len(), 5);
        let rates = core.rates();
        assert_eq!(rates.len(), 4);
        for r in &rates {
            assert!(r.captured_pps > 0.0, "counters advanced every tick");
            assert_eq!(r.drop_rate, 0.0);
        }
    }

    #[test]
    fn anomaly_writes_exactly_one_flight_record() {
        let dir = std::env::temp_dir().join(format!("wirecap-sampler-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = SamplerConfig {
            anomaly: Some(AnomalyConfig {
                drop_rate_spike: Some(0.05),
                queue_depth_limit: None,
                offload_storm_cps: None,
                disk_drop_pps: None,
                tail_latency_ns: None,
                sustain_samples: 2,
                clear_samples: 2,
            }),
            flight_dir: Some(dir.clone()),
            flight_window: 16,
            ..Default::default()
        };
        // Drops start at snapshot 4 and persist: one sustained episode.
        let st = ticked_state(cfg, 4, 10);
        let core = st.core();
        assert_eq!(core.anomalies(), 1, "one episode, one anomaly");
        let records = core.flight_records();
        assert_eq!(records.len(), 1, "one episode, one file");
        let body = std::fs::read_to_string(&records[0]).unwrap();
        let record: FlightRecord = serde_json::from_str(&body).unwrap();
        assert!(
            record.reason.contains("drop-rate spike"),
            "{}",
            record.reason
        );
        assert!(!record.series.is_empty());
        assert!(!record.rates.is_empty());
        assert_eq!(record.events.len(), 1, "tracer ring frozen into record");
        assert_eq!(record.events[0].kind, "capture");
        assert_eq!(record.spans.len(), 1, "span ring frozen into record");
        assert_eq!(record.spans[0].seq, 11);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sampler_services_dump_requests_from_the_flag() {
        // The SIGUSR1 handler only sets the atomic flag; the sampler
        // polls it and performs all I/O on its own thread. With no
        // WIRECAP_TELEMETRY_DUMP target configured the dump is a no-op
        // write, but the request must still be consumed and counted.
        let _guard = dump::TEST_FLAG_LOCK.lock().unwrap();
        let cfg = SamplerConfig {
            anomaly: None,
            ..Default::default()
        };
        let mut st = SamplerState::new(
            Arc::new(FakeEngine {
                calls: AtomicU64::new(0),
                drop_from: u64::MAX,
            }),
            cfg,
        );
        st.tick();
        assert_eq!(st.core().dumps_served(), 0);
        dump::request_dump();
        st.tick();
        assert_eq!(st.core().dumps_served(), 1, "flag polled and consumed");
        assert!(!dump::dump_requested(), "request consumed exactly once");
        st.tick();
        assert_eq!(st.core().dumps_served(), 1);
    }

    #[test]
    fn sampler_thread_runs_and_stops() {
        let mut sampler = Sampler::start(
            Arc::new(FakeEngine {
                calls: AtomicU64::new(0),
                drop_from: u64::MAX,
            }),
            SamplerConfig {
                interval: Duration::from_millis(2),
                anomaly: None,
                ..Default::default()
            },
        );
        let core = sampler.core();
        let deadline = Instant::now() + Duration::from_secs(5);
        while core.samples() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.stop();
        assert!(core.samples() >= 3, "sampler ticked while running");
        let after = core.samples();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(core.samples(), after, "no ticks after stop");
    }
}
