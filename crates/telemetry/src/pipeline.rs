//! The live telemetry pipeline: sampler + scrape endpoint as one
//! environment-configured unit.
//!
//! Engines and harnesses attach observability with one call:
//!
//! ```no_run
//! # use std::sync::Arc;
//! # use telemetry::pipeline::TelemetryPipeline;
//! # use telemetry::sampler::Observable;
//! # use telemetry::{EngineSnapshot, QueueTelemetry};
//! // Anything that can produce an `EngineSnapshot` is observable —
//! // real engines expose such an observer handle directly.
//! struct MyEngine;
//! impl Observable for MyEngine {
//!     fn snapshot(&self) -> EngineSnapshot {
//!         EngineSnapshot {
//!             engine: "my-engine".into(),
//!             tuning: None,
//!             queues: vec![QueueTelemetry::empty(0)],
//!             workers: Vec::new(),
//!             copies: Default::default(),
//!             latency: Default::default(),
//!         }
//!     }
//! }
//! let observer: Arc<dyn Observable> = Arc::new(MyEngine);
//! let pipeline = TelemetryPipeline::start_from_env("my-engine", observer);
//! // … run …
//! drop(pipeline); // stops sampler + endpoint
//! ```
//!
//! Configuration is environment-driven so the `scripts/` harnesses and
//! figure binaries need no flag plumbing:
//!
//! * `WIRECAP_TELEMETRY_LISTEN` — bind address for the scrape endpoint
//!   (e.g. `127.0.0.1:9184`; port `0` for ephemeral). Unset: no
//!   endpoint.
//! * `WIRECAP_TELEMETRY_SAMPLE_MS` — sampling interval in
//!   milliseconds (default 100). **`0` disables the sampler thread
//!   entirely** — the escape hatch for latency-critical runs; the
//!   scrape endpoint still serves `/metrics` and `/snapshot.json`
//!   (direct snapshots), only `/series.json`, anomaly detection and
//!   flight records go away.
//! * `WIRECAP_TELEMETRY_FLIGHT_DIR` — directory for anomaly-triggered
//!   flight records. Unset: anomalies are counted but not dumped.
//!
//! [`TelemetryPipeline::start_from_env`] returns `None` when *neither*
//! a listen address nor a sampler would be active, so the default
//! (no telemetry env) costs nothing — not even a thread.

use crate::anomaly::AnomalyConfig;
use crate::sampler::{Observable, Sampler, SamplerConfig, SamplerCore};
use crate::scrape::ScrapeServer;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Resolved pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Scrape-endpoint bind address; `None` disables the endpoint.
    pub listen: Option<String>,
    /// Sampling interval; `None` disables the sampler thread (the
    /// `WIRECAP_TELEMETRY_SAMPLE_MS=0` escape hatch).
    pub sample_interval: Option<Duration>,
    /// Anomaly thresholds for the sampler.
    pub anomaly: Option<AnomalyConfig>,
    /// Flight-record directory.
    pub flight_dir: Option<std::path::PathBuf>,
}

impl PipelineConfig {
    /// Reads `WIRECAP_TELEMETRY_LISTEN`, `WIRECAP_TELEMETRY_SAMPLE_MS`
    /// and `WIRECAP_TELEMETRY_FLIGHT_DIR`.
    pub fn from_env() -> Self {
        let listen = std::env::var("WIRECAP_TELEMETRY_LISTEN")
            .ok()
            .filter(|s| !s.is_empty());
        let sample_interval = match std::env::var("WIRECAP_TELEMETRY_SAMPLE_MS") {
            Ok(ms) => match ms.trim().parse::<u64>() {
                Ok(0) => None,
                Ok(ms) => Some(Duration::from_millis(ms)),
                Err(_) => {
                    eprintln!(
                        "wirecap telemetry: ignoring invalid WIRECAP_TELEMETRY_SAMPLE_MS={ms:?}"
                    );
                    Some(Duration::from_millis(100))
                }
            },
            Err(_) => Some(Duration::from_millis(100)),
        };
        let flight_dir = std::env::var_os("WIRECAP_TELEMETRY_FLIGHT_DIR")
            .filter(|s| !s.is_empty())
            .map(std::path::PathBuf::from);
        PipelineConfig {
            listen,
            sample_interval,
            anomaly: Some(AnomalyConfig::default()),
            flight_dir,
        }
    }

    /// True when this configuration would start neither a sampler nor
    /// an endpoint.
    pub fn is_inert(&self) -> bool {
        self.listen.is_none() && self.sample_interval.is_none()
    }
}

/// A running sampler + scrape endpoint pair. Dropping (or
/// [`TelemetryPipeline::stop`]) shuts both down.
#[derive(Debug)]
pub struct TelemetryPipeline {
    sampler: Option<Sampler>,
    server: Option<ScrapeServer>,
}

impl TelemetryPipeline {
    /// Starts the pipeline per `cfg`. Returns `None` (and starts no
    /// threads) when `cfg` is inert.
    pub fn start(engine: &str, observer: Arc<dyn Observable>, cfg: PipelineConfig) -> Option<Self> {
        if cfg.is_inert() {
            return None;
        }
        let sampler = cfg.sample_interval.map(|interval| {
            Sampler::start(
                Arc::clone(&observer),
                SamplerConfig {
                    interval,
                    anomaly: cfg.anomaly,
                    flight_dir: cfg.flight_dir.clone(),
                    ..Default::default()
                },
            )
        });
        let server = cfg.listen.as_deref().and_then(|addr| {
            match ScrapeServer::bind(addr, observer, sampler.as_ref().map(Sampler::core)) {
                Ok(s) => {
                    eprintln!(
                        "wirecap telemetry: {engine}: serving http://{}/metrics",
                        s.addr()
                    );
                    Some(s)
                }
                Err(e) => {
                    eprintln!("wirecap telemetry: {engine}: binding {addr}: {e}");
                    None
                }
            }
        });
        if sampler.is_none() && server.is_none() {
            return None;
        }
        Some(TelemetryPipeline { sampler, server })
    }

    /// Starts the pipeline from the environment (see module docs).
    /// `None` when no telemetry env is set — the common case.
    pub fn start_from_env(engine: &str, observer: Arc<dyn Observable>) -> Option<Self> {
        let cfg = PipelineConfig::from_env();
        if cfg.is_inert() {
            return None;
        }
        Self::start(engine, observer, cfg)
    }

    /// The scrape endpoint's bound address, when one is serving.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.server.as_ref().map(ScrapeServer::addr)
    }

    /// The sampler's reader-side state, when a sampler is running.
    pub fn sampler_core(&self) -> Option<Arc<SamplerCore>> {
        self.sampler.as_ref().map(Sampler::core)
    }

    /// Stops sampler and endpoint (idempotent; also runs on drop).
    pub fn stop(&mut self) {
        if let Some(s) = self.sampler.as_mut() {
            s.stop();
        }
        if let Some(s) = self.server.as_mut() {
            s.stop();
        }
    }
}

impl Drop for TelemetryPipeline {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{EngineSnapshot, QueueTelemetry};

    struct Fixed;

    impl Observable for Fixed {
        fn snapshot(&self) -> EngineSnapshot {
            EngineSnapshot {
                engine: "pipeline-test".into(),
                tuning: None,
                queues: vec![QueueTelemetry::empty(0)],
                workers: Vec::new(),
                copies: sim::stats::CopyMeter::default(),
                latency: sim::stats::LatencyStats::new(),
            }
        }
    }

    #[test]
    fn inert_config_starts_nothing() {
        let cfg = PipelineConfig {
            listen: None,
            sample_interval: None,
            anomaly: None,
            flight_dir: None,
        };
        assert!(cfg.is_inert());
        assert!(TelemetryPipeline::start("x", Arc::new(Fixed), cfg).is_none());
    }

    #[test]
    fn endpoint_without_sampler_is_the_escape_hatch() {
        // WIRECAP_TELEMETRY_SAMPLE_MS=0 semantics: endpoint up, no
        // sampler thread.
        let cfg = PipelineConfig {
            listen: Some("127.0.0.1:0".into()),
            sample_interval: None,
            anomaly: None,
            flight_dir: None,
        };
        let mut p = TelemetryPipeline::start("x", Arc::new(Fixed), cfg).unwrap();
        assert!(p.addr().is_some());
        assert!(p.sampler_core().is_none());
        p.stop();
    }

    #[test]
    fn sampler_and_endpoint_run_together() {
        let cfg = PipelineConfig {
            listen: Some("127.0.0.1:0".into()),
            sample_interval: Some(Duration::from_millis(5)),
            anomaly: None,
            flight_dir: None,
        };
        let mut p = TelemetryPipeline::start("x", Arc::new(Fixed), cfg).unwrap();
        let core = p.sampler_core().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while core.samples() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(core.samples() >= 2);
        p.stop();
    }
}
