//! Unified telemetry for WireCAP capture engines.
//!
//! The paper's evaluation (§4, Figs. 11–14) is driven entirely by
//! per-queue counters — packets captured, dropped, delivered, chunks
//! offloaded between buddies, partial-chunk copies. This crate is the
//! one observability layer those numbers flow through:
//!
//! * [`Registry`] / [`QueueCounters`] — lock-free, cache-padded,
//!   relaxed-atomic counter groups sharded by writer role (capture
//!   thread, application/consumer side, buddy peers), so the hot path
//!   pays one relaxed RMW per *batch*, never a lock and never a shared
//!   cache line between roles.
//! * [`Log2Histogram`] — fixed-bucket power-of-two histograms for
//!   capture-queue depth, chunk fill level and handoff batch sizes.
//! * [`EventTracer`] — a bounded ring buffer of chunk lifecycle events
//!   (`free → attached → captured → recycled`) and offload decisions
//!   (which buddy was chosen, and why). Disabled by default; recording
//!   while disabled is a single relaxed load.
//! * [`spans`] — sampled per-chunk lifecycle spans: per-stage latency
//!   decomposition histograms, a worker time-state profiler, and a
//!   bounded ring of completed spans exportable as Chrome trace-event
//!   JSON (`/trace.json`, `chrome://tracing` / Perfetto).
//! * [`QueueTelemetry`] / [`EngineSnapshot`] — the one snapshot schema
//!   every engine (live, simulated, and the baseline models) returns
//!   from `CaptureEngine::telemetry(q)`, serializable to JSON and
//!   Prometheus text exposition, dumpable on `SIGUSR1` or shutdown
//!   (see [`dump`]).
//!
//! The naming scheme (the single drop-accounting vocabulary, DESIGN.md
//! §4.8): packet counters end in `_packets`, chunk counters in
//! `_chunks`; `capture_drop_packets` are losses on the capture side
//! (pool or ring exhausted, the paper's "capture drops"),
//! `delivery_drop_packets` are packets captured but never delivered to
//! the application ("delivery drops"), and `nic_drop_packets` are
//! frames the NIC dropped before the engine ever saw them.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod anomaly;
pub mod clock;
pub mod counters;
pub mod dump;
pub mod flight;
pub mod hist;
pub mod pipeline;
pub mod registry;
pub mod sampler;
pub mod scrape;
pub mod snapshot;
pub mod spans;
pub mod timeseries;
pub mod trace;

pub use anomaly::{Anomaly, AnomalyConfig, AnomalyDetector};
pub use counters::{
    CaptureSide, Counter, DeliverySide, DiskSide, Gauge, PeerSide, PoolSide, QueueCounters,
};
pub use flight::{FlightEvent, FlightRecord};
pub use hist::{HistogramSnapshot, Log2Histogram, RunRecorder, BUCKETS};
pub use pipeline::{PipelineConfig, TelemetryPipeline};
pub use registry::Registry;
pub use sampler::{Observable, Sampler, SamplerConfig, SamplerCore, SamplerState};
pub use scrape::ScrapeServer;
pub use snapshot::{EngineSnapshot, QueueTelemetry, TuningTelemetry};
pub use spans::{
    chrome_trace_json, SpanRecord, SpanRing, SpanStamps, WorkerState, WorkerTelemetry,
    WorkerTimeState, DEFAULT_SPAN_CAPACITY,
};
pub use timeseries::{Rates, SeriesSample, TimeSeriesRing};
pub use trace::{kind, EventTracer, TraceEvent};
