//! Fixed-capacity telemetry time series: samples, deltas, rates.
//!
//! The paper's evaluation (§4) is about behaviour *over time under
//! load* — drop rate as offered load ramps, capture-queue depth as
//! buddy offloading kicks in. A [`TimeSeriesRing`] holds the last N
//! [`SeriesSample`]s taken by the periodic sampler; consecutive samples
//! yield [`Rates`] (pps, drop rate, offload rate, queue-depth peaks)
//! without ever touching the hot path.
//!
//! The ring is allocation-free after construction: capacity is
//! reserved up front and pushes overwrite the oldest slot in place.
//! Rate computation is defensive by construction — counter deltas use
//! saturating subtraction (a restarted engine can only stall a rate,
//! never produce a negative one), and a zero or non-positive interval
//! yields `None` instead of an infinite or NaN rate.

use serde::{Deserialize, Serialize};

use crate::snapshot::EngineSnapshot;

/// One engine-wide telemetry sample, cheap to copy into the ring.
///
/// Counters are monotonic totals (summed over queues); `*_len` fields
/// are gauges observed at the sample instant. `capture_queue_max_len`
/// is the *deepest single queue* — the signal the buddy-offloading
/// threshold T is defined over — while `capture_queue_len` sums all
/// queues.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SeriesSample {
    /// Monotonic timestamp of the sample (ns, see [`crate::clock`]).
    pub ts_ns: u64,
    /// Total packets captured so far.
    pub captured_packets: u64,
    /// Total packets delivered to applications so far.
    pub delivered_packets: u64,
    /// Total packets lost so far (capture + delivery + NIC drops).
    pub drop_packets: u64,
    /// Total chunks sealed so far.
    pub sealed_chunks: u64,
    /// Total chunks placed on buddies so far.
    pub offloaded_chunks: u64,
    /// Total packets the disk sink dropped so far (writer fell behind).
    pub disk_drop_packets: u64,
    /// Total packets delivered through stolen chunks so far (consumer
    /// pool rebalancing; 0 when no pool is attached).
    pub stolen_packets: u64,
    /// Total packets recorded into flow tables so far (0 when no flow
    /// sink is attached).
    pub flow_packets: u64,
    /// Gauge: chunks waiting on all capture queues combined.
    pub capture_queue_len: u64,
    /// Gauge: deepest single capture queue at the sample instant.
    pub capture_queue_max_len: u64,
    /// Gauge: free chunks across all pools.
    pub free_chunks: u64,
    /// Gauge: engine-wide p99.9 capture-to-delivery latency (ns),
    /// interpolated from the merged per-queue `latency_ns` histograms
    /// at the sample instant; 0 until any latency is recorded.
    pub latency_p999_ns: u64,
}

impl SeriesSample {
    /// Condenses a full [`EngineSnapshot`] into one sample stamped
    /// `ts_ns`.
    pub fn from_snapshot(ts_ns: u64, snap: &EngineSnapshot) -> Self {
        let mut s = SeriesSample {
            ts_ns,
            ..Default::default()
        };
        let mut latency = crate::hist::HistogramSnapshot::default();
        for q in &snap.queues {
            s.captured_packets += q.captured_packets;
            s.delivered_packets += q.delivered_packets;
            s.drop_packets += q.capture_drop_packets + q.delivery_drop_packets + q.nic_drop_packets;
            s.sealed_chunks += q.sealed_chunks;
            s.offloaded_chunks += q.offloaded_out_chunks;
            s.disk_drop_packets += q.disk_drop_packets;
            s.stolen_packets += q.stolen_packets;
            s.flow_packets += q.flow_tracked_packets;
            s.capture_queue_len += q.capture_queue_len;
            s.capture_queue_max_len = s.capture_queue_max_len.max(q.capture_queue_len);
            s.free_chunks += q.free_chunks;
            latency.merge(&q.latency_ns);
        }
        s.latency_p999_ns = latency.quantile(0.999);
        s
    }
}

/// Rates derived from two consecutive samples of the same engine.
///
/// All rates are finite and non-negative by construction: deltas
/// saturate at zero and the constructor refuses non-positive
/// intervals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Rates {
    /// Interval the rates are averaged over, ns (> 0).
    pub dt_ns: u64,
    /// Capture rate, packets/s.
    pub captured_pps: f64,
    /// Delivery rate, packets/s.
    pub delivered_pps: f64,
    /// Loss rate, packets/s.
    pub drop_pps: f64,
    /// Fraction of this interval's packets that were lost:
    /// `drops / (captured + drops)`; 0 when the interval saw no
    /// packets.
    pub drop_rate: f64,
    /// Chunk seal rate, chunks/s.
    pub sealed_cps: f64,
    /// Buddy offload rate, chunks/s.
    pub offload_cps: f64,
    /// Fraction of this interval's sealed chunks that were offloaded;
    /// 0 when no chunk was sealed.
    pub offload_rate: f64,
    /// Disk-sink drop rate, packets/s — nonzero only while the disk
    /// writer is falling behind the capture stream.
    pub disk_drop_pps: f64,
    /// Work-stealing rate, packets/s delivered via stolen chunks —
    /// nonzero only while a consumer pool is actively rebalancing.
    pub steal_pps: f64,
    /// Flow-analytics ingest rate, packets/s recorded into flow tables
    /// — nonzero only while a flow sink is attached.
    pub flow_pps: f64,
    /// Deepest single capture queue at the interval's end sample — the
    /// high-watermark signal the anomaly detector compares against the
    /// offload threshold.
    pub queue_depth_peak: u64,
    /// Engine-wide p99.9 capture-to-delivery latency over the interval
    /// (ns): the higher of the two samples' gauges, so a regression in
    /// either endpoint is visible to the tail-latency anomaly rule.
    pub latency_p999_ns: u64,
}

/// Computes rates between `prev` and `next` samples of one engine.
///
/// Returns `None` when `next` is not strictly later than `prev` (clock
/// stall, duplicated sample, or samples pushed out of order), so
/// downstream math never divides by zero.
pub fn rates_between(prev: &SeriesSample, next: &SeriesSample) -> Option<Rates> {
    let dt_ns = next.ts_ns.saturating_sub(prev.ts_ns);
    if dt_ns == 0 {
        return None;
    }
    let secs = dt_ns as f64 / 1e9;
    let d = |a: u64, b: u64| b.saturating_sub(a);
    let captured = d(prev.captured_packets, next.captured_packets);
    let delivered = d(prev.delivered_packets, next.delivered_packets);
    let drops = d(prev.drop_packets, next.drop_packets);
    let sealed = d(prev.sealed_chunks, next.sealed_chunks);
    let offloaded = d(prev.offloaded_chunks, next.offloaded_chunks);
    let disk_drops = d(prev.disk_drop_packets, next.disk_drop_packets);
    let stolen = d(prev.stolen_packets, next.stolen_packets);
    let flow = d(prev.flow_packets, next.flow_packets);
    let seen = captured + drops;
    Some(Rates {
        dt_ns,
        captured_pps: captured as f64 / secs,
        delivered_pps: delivered as f64 / secs,
        drop_pps: drops as f64 / secs,
        drop_rate: if seen == 0 {
            0.0
        } else {
            drops as f64 / seen as f64
        },
        sealed_cps: sealed as f64 / secs,
        offload_cps: offloaded as f64 / secs,
        offload_rate: if sealed == 0 {
            0.0
        } else {
            offloaded as f64 / sealed as f64
        },
        disk_drop_pps: disk_drops as f64 / secs,
        steal_pps: stolen as f64 / secs,
        flow_pps: flow as f64 / secs,
        queue_depth_peak: next.capture_queue_max_len.max(prev.capture_queue_max_len),
        latency_p999_ns: next.latency_p999_ns.max(prev.latency_p999_ns),
    })
}

/// Fixed-capacity ring of [`SeriesSample`]s, oldest overwritten first.
///
/// All storage is reserved in [`TimeSeriesRing::with_capacity`];
/// [`push`](TimeSeriesRing::push) never allocates.
#[derive(Debug)]
pub struct TimeSeriesRing {
    buf: Vec<SeriesSample>,
    capacity: usize,
    /// Index the next push writes (== oldest slot once full).
    next: usize,
}

impl TimeSeriesRing {
    /// Creates a ring retaining the last `capacity` samples
    /// (`capacity` is clamped to ≥ 2 so rates always have a pair).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        TimeSeriesRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
        }
    }

    /// Maximum samples retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no sample has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a sample, overwriting the oldest once full. Never
    /// allocates: capacity was reserved at construction.
    pub fn push(&mut self, sample: SeriesSample) {
        if self.buf.len() < self.capacity {
            self.buf.push(sample);
        } else {
            self.buf[self.next] = sample;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<&SeriesSample> {
        if self.buf.len() < self.capacity {
            self.buf.last()
        } else {
            self.buf
                .get((self.next + self.capacity - 1) % self.capacity)
        }
    }

    /// The retained samples, oldest first. Allocates the returned
    /// vector (reader-side only; the sampler never calls this on the
    /// hot path).
    pub fn window(&self) -> Vec<SeriesSample> {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() == self.capacity {
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        out
    }

    /// The last `n` samples, oldest first.
    pub fn tail(&self, n: usize) -> Vec<SeriesSample> {
        let mut w = self.window();
        let skip = w.len().saturating_sub(n);
        w.drain(..skip);
        w
    }

    /// Rates over every consecutive retained pair, oldest first.
    /// Intervals with a non-positive duration are skipped.
    pub fn rates(&self) -> Vec<Rates> {
        let w = self.window();
        w.windows(2)
            .filter_map(|p| rates_between(&p[0], &p[1]))
            .collect()
    }

    /// Rates over the most recent interval, if one exists.
    pub fn last_rates(&self) -> Option<Rates> {
        let w = self.window();
        if w.len() < 2 {
            return None;
        }
        rates_between(&w[w.len() - 2], &w[w.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ts_ns: u64, captured: u64, drops: u64) -> SeriesSample {
        SeriesSample {
            ts_ns,
            captured_packets: captured,
            delivered_packets: captured,
            drop_packets: drops,
            ..Default::default()
        }
    }

    #[test]
    fn rates_are_per_second() {
        let a = sample(0, 0, 0);
        let b = sample(1_000_000_000, 10_000, 100);
        let r = rates_between(&a, &b).unwrap();
        assert!((r.captured_pps - 10_000.0).abs() < 1e-9);
        assert!((r.drop_pps - 100.0).abs() < 1e-9);
        assert!((r.drop_rate - 100.0 / 10_100.0).abs() < 1e-12);
    }

    #[test]
    fn zero_interval_yields_none() {
        let a = sample(5, 10, 0);
        assert!(rates_between(&a, &a).is_none());
        let earlier = sample(1, 20, 0);
        assert!(rates_between(&a, &earlier).is_none(), "out-of-order pair");
    }

    #[test]
    fn zero_deltas_yield_zero_rates_not_nan() {
        let a = sample(0, 50, 5);
        let b = sample(1_000, 50, 5);
        let r = rates_between(&a, &b).unwrap();
        assert_eq!(r.captured_pps, 0.0);
        assert_eq!(r.drop_rate, 0.0);
        assert_eq!(r.offload_rate, 0.0);
        assert!(r.drop_rate.is_finite());
    }

    #[test]
    fn counter_regression_saturates_to_zero() {
        // A counter going backwards (engine restart) must not produce
        // a negative rate.
        let a = sample(0, 1_000, 10);
        let b = sample(1_000_000, 400, 2);
        let r = rates_between(&a, &b).unwrap();
        assert_eq!(r.captured_pps, 0.0);
        assert_eq!(r.drop_pps, 0.0);
    }

    #[test]
    fn ring_overwrites_oldest_and_windows_in_order() {
        let mut ring = TimeSeriesRing::with_capacity(4);
        assert!(ring.is_empty());
        for i in 0..10u64 {
            ring.push(sample(i * 100, i * 10, 0));
        }
        assert_eq!(ring.len(), 4);
        let w = ring.window();
        let ts: Vec<u64> = w.iter().map(|s| s.ts_ns).collect();
        assert_eq!(ts, vec![600, 700, 800, 900]);
        assert_eq!(ring.latest().unwrap().ts_ns, 900);
        assert_eq!(ring.tail(2).first().unwrap().ts_ns, 800);
        assert_eq!(ring.rates().len(), 3);
        let r = ring.last_rates().unwrap();
        assert_eq!(r.dt_ns, 100);
    }
}
