//! The scrape endpoint: a dependency-free HTTP server for live
//! telemetry.
//!
//! Serves a running engine without stopping it:
//!
//! * `GET /metrics` — Prometheus text exposition (the same encoder as
//!   the dump hook, [`crate::EngineSnapshot::to_prometheus`]);
//! * `GET /snapshot.json` — the unified snapshot JSON;
//! * `GET /series.json` — the sampler's time-series window and derived
//!   rates (`404` when no sampler is attached);
//! * `GET /healthz` — liveness probe.
//!
//! Built on nothing but `std::net::TcpListener`: one acceptor thread,
//! non-blocking accept with a short sleep so shutdown is prompt, one
//! snapshot per request. Each accepted connection is served on a
//! short-lived worker thread, so one stalled or slow client can never
//! hold the accept loop hostage — `/healthz` stays responsive while a
//! misbehaving scraper waits out its read timeout. Scrapes are
//! reader-side only — the hot path never notices them. This is
//! deliberately *not* a general HTTP server: requests beyond a line +
//! headers are ignored, keep-alive is not offered, and responses close
//! the connection.

use crate::sampler::{Observable, SamplerCore};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running scrape endpoint. Dropping (or [`ScrapeServer::stop`])
/// shuts the acceptor down and joins it.
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ScrapeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScrapeServer")
            .field("addr", &self.addr)
            .field("served", &self.served.load(Ordering::Relaxed))
            .finish()
    }
}

impl ScrapeServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`; port `0` picks an
    /// ephemeral port — read it back with [`ScrapeServer::addr`]) and
    /// starts serving `observer`. `sampler` adds `/series.json`.
    pub fn bind(
        addr: &str,
        observer: Arc<dyn Observable>,
        sampler: Option<Arc<SamplerCore>>,
    ) -> std::io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let stop_flag = Arc::clone(&stop);
        let served_ctr = Arc::clone(&served);
        let thread = std::thread::Builder::new()
            .name("wirecap-scrape".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // Serve on a short-lived worker so a slow
                            // or stalled client only ties up its own
                            // thread (bounded by the per-connection
                            // timeouts), never the accept loop.
                            let obs = Arc::clone(&observer);
                            let smp = sampler.clone();
                            let ctr = Arc::clone(&served_ctr);
                            let spawned = std::thread::Builder::new()
                                .name("wirecap-scrape-conn".into())
                                .spawn(move || {
                                    if serve_one(stream, obs.as_ref(), smp.as_deref()).is_ok() {
                                        ctr.fetch_add(1, Ordering::Relaxed);
                                    }
                                });
                            if let Err(e) = spawned {
                                // Out of threads: degrade, don't die —
                                // the next accept tries again.
                                eprintln!("wirecap telemetry: scrape worker spawn: {e}");
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(e) => {
                            eprintln!("wirecap telemetry: scrape accept: {e}");
                            std::thread::sleep(Duration::from_millis(50));
                        }
                    }
                }
            })
            .expect("spawning scrape thread");
        Ok(ScrapeServer {
            addr,
            stop,
            served,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stops and joins the acceptor thread (idempotent). In-flight
    /// worker threads finish on their own, bounded by the
    /// per-connection timeouts.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            // A panicking acceptor must not take the engine down with
            // it from Drop — log and move on.
            if t.join().is_err() {
                eprintln!("wirecap telemetry: scrape acceptor thread panicked");
            }
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Reads one request, routes it, writes one response, closes.
fn serve_one(
    mut stream: TcpStream,
    observer: &dyn Observable,
    sampler: Option<&SamplerCore>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let path = match read_request_path(&mut stream) {
        Some(p) => p,
        None => {
            write_response(&mut stream, 400, "text/plain", "bad request\n")?;
            return Ok(());
        }
    };
    match path.as_str() {
        "/metrics" => {
            let body = observer.snapshot().to_prometheus();
            write_response(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/snapshot.json" => {
            let body = observer.snapshot().to_json() + "\n";
            write_response(&mut stream, 200, "application/json", &body)
        }
        "/series.json" => match sampler {
            Some(core) => match series_json(core) {
                Ok(body) => write_response(&mut stream, 200, "application/json", &body),
                Err(e) => {
                    // Serialization failure is a server bug worth a
                    // status code, not a panic in a worker thread.
                    eprintln!("wirecap telemetry: series serialization: {e}");
                    write_response(
                        &mut stream,
                        500,
                        "text/plain",
                        "series serialization failed\n",
                    )
                }
            },
            None => write_response(&mut stream, 404, "text/plain", "no sampler attached\n"),
        },
        "/healthz" => write_response(&mut stream, 200, "text/plain", "ok\n"),
        _ => write_response(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// The `/series.json` document: retained samples plus derived rates.
fn series_json(core: &SamplerCore) -> Result<String, serde_json::JsonError> {
    let doc = SeriesDoc {
        samples: core.samples(),
        anomalies: core.anomalies(),
        series: core.series(),
        rates: core.rates(),
    };
    Ok(serde_json::to_string_pretty(&doc)? + "\n")
}

#[derive(serde::Serialize)]
struct SeriesDoc {
    samples: u64,
    anomalies: u64,
    series: Vec<crate::timeseries::SeriesSample>,
    rates: Vec<crate::timeseries::Rates>,
}

/// Parses the request line (`GET <path> HTTP/1.x`) from the stream.
/// Reads until the header terminator or 4 KiB, whichever comes first.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= 4096 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    // Strip any query string; routes take no parameters.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        500 => "Internal Server Error",
        _ => "Not Found",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{EngineSnapshot, QueueTelemetry};

    struct Fixed;

    impl Observable for Fixed {
        fn snapshot(&self) -> EngineSnapshot {
            let mut q = QueueTelemetry::empty(0);
            q.captured_packets = 42;
            EngineSnapshot {
                engine: "scrape-test".into(),
                queues: vec![q],
                copies: sim::stats::CopyMeter::default(),
                latency: sim::stats::LatencyStats::new(),
            }
        }
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut body = String::new();
        s.read_to_string(&mut body).unwrap();
        let status: u16 = body
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let payload = body
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, payload)
    }

    #[test]
    fn serves_metrics_snapshot_and_404() {
        let mut server = ScrapeServer::bind("127.0.0.1:0", Arc::new(Fixed), None).unwrap();
        let addr = server.addr();
        let (status, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(metrics
            .contains("wirecap_captured_packets_total{engine=\"scrape-test\",queue=\"0\"} 42"));
        let (status, snap) = get(addr, "/snapshot.json");
        assert_eq!(status, 200);
        let parsed: EngineSnapshot = serde_json::from_str(&snap).unwrap();
        assert_eq!(parsed.engine, "scrape-test");
        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        let (status, _) = get(addr, "/series.json");
        assert_eq!(status, 404, "no sampler attached");
        let (status, ok) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(ok, "ok\n");
        assert!(server.served() >= 5);
        server.stop();
    }

    #[test]
    fn serves_series_when_sampler_attached() {
        use crate::sampler::{SamplerConfig, SamplerState};
        let mut st = SamplerState::new(
            Arc::new(Fixed),
            SamplerConfig {
                anomaly: None,
                ..Default::default()
            },
        );
        st.tick();
        std::thread::sleep(Duration::from_millis(1));
        st.tick();
        let mut server =
            ScrapeServer::bind("127.0.0.1:0", Arc::new(Fixed), Some(st.core())).unwrap();
        let (status, body) = get(server.addr(), "/series.json");
        assert_eq!(status, 200);
        assert!(body.contains("\"series\""), "{body}");
        assert!(body.contains("\"captured_pps\""), "{body}");
        server.stop();
    }

    #[test]
    fn slow_client_does_not_delay_healthz() {
        let mut server = ScrapeServer::bind("127.0.0.1:0", Arc::new(Fixed), None).unwrap();
        let addr = server.addr();
        // A deliberately slow client: connects, sends nothing, and
        // holds the connection open. Before per-connection workers,
        // this parked the single accept loop inside serve_one's 500 ms
        // read timeout and every other request queued behind it.
        let stalled: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();
        // Give the acceptor a beat to accept the stalled connections
        // so they are genuinely in-flight, not still in the backlog.
        std::thread::sleep(Duration::from_millis(30));
        let t0 = std::time::Instant::now();
        let (status, ok) = get(addr, "/healthz");
        let elapsed = t0.elapsed();
        assert_eq!(status, 200);
        assert_eq!(ok, "ok\n");
        assert!(
            elapsed < Duration::from_millis(50),
            "healthz took {elapsed:?} behind stalled clients"
        );
        drop(stalled);
        server.stop();
    }
}
