//! The scrape endpoint: a dependency-free HTTP server for live
//! telemetry.
//!
//! Serves a running engine without stopping it:
//!
//! * `GET /metrics` — Prometheus text exposition (the same encoder as
//!   the dump hook, [`crate::EngineSnapshot::to_prometheus`]);
//! * `GET /snapshot.json` — the unified snapshot JSON;
//! * `GET /series.json` — the sampler's time-series window and derived
//!   rates (`404` when no sampler is attached);
//! * `GET /trace.json` — the completed-span ring plus worker
//!   time-state totals as Chrome trace-event JSON, loadable directly
//!   in `chrome://tracing` / Perfetto (an empty event array when span
//!   tracing is off);
//! * `GET /healthz` — liveness probe.
//!
//! Built on nothing but `std::net::TcpListener`: one acceptor thread,
//! non-blocking accept with a short sleep so shutdown is prompt, one
//! snapshot per request. Accepted connections go through a bounded
//! queue to a **fixed pool** of worker threads ([`WORKER_THREADS`] of
//! them), so a stalled or slow client only ties up one worker — never
//! the accept loop — and a burst of N clients costs N queue slots, not
//! N thread spawns. When the queue is full the connection is dropped
//! and counted ([`ScrapeServer::rejected`]): shedding scrapes is
//! always preferable to unbounded thread growth next to a capture hot
//! path. Scrapes are reader-side only — the hot path never notices
//! them. This is deliberately *not* a general HTTP server: requests
//! beyond a line + headers are ignored, keep-alive is not offered, and
//! responses close the connection.

use crate::sampler::{Observable, SamplerCore};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Fixed number of connection-serving worker threads. Sized so a
/// handful of stalled clients (each parked inside its 500 ms read
/// timeout) still leaves free workers for a liveness probe.
pub const WORKER_THREADS: usize = 6;

/// Accepted connections waiting for a worker. Beyond this the acceptor
/// sheds new connections instead of queueing them.
const CONN_QUEUE_LIMIT: usize = 128;

/// The acceptor→worker handoff: a bounded FIFO of accepted streams.
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
}

/// A running scrape endpoint. Dropping (or [`ScrapeServer::stop`])
/// shuts the acceptor and worker pool down and joins them.
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    rejected: Arc<AtomicU64>,
    peak_active: Arc<AtomicU64>,
    conns: Arc<ConnQueue>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ScrapeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScrapeServer")
            .field("addr", &self.addr)
            .field("served", &self.served.load(Ordering::Relaxed))
            .field("rejected", &self.rejected.load(Ordering::Relaxed))
            .finish()
    }
}

impl ScrapeServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`; port `0` picks an
    /// ephemeral port — read it back with [`ScrapeServer::addr`]) and
    /// starts serving `observer`. `sampler` adds `/series.json`.
    pub fn bind(
        addr: &str,
        observer: Arc<dyn Observable>,
        sampler: Option<Arc<SamplerCore>>,
    ) -> std::io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let rejected = Arc::new(AtomicU64::new(0));
        let peak_active = Arc::new(AtomicU64::new(0));
        let active = Arc::new(AtomicU64::new(0));
        let conns = Arc::new(ConnQueue {
            queue: Mutex::new(VecDeque::with_capacity(CONN_QUEUE_LIMIT)),
            available: Condvar::new(),
        });
        let mut threads = Vec::with_capacity(WORKER_THREADS + 1);

        // The fixed worker pool: each thread loops pop → serve. The
        // pool size never changes, no matter how many clients connect.
        for w in 0..WORKER_THREADS {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let observer = Arc::clone(&observer);
            let sampler = sampler.clone();
            let served = Arc::clone(&served);
            let active = Arc::clone(&active);
            let peak_active = Arc::clone(&peak_active);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("wirecap-scrape-{w}"))
                    .spawn(move || loop {
                        let stream = {
                            let mut q = conns.queue.lock().expect("scrape queue poisoned");
                            loop {
                                if stop.load(Ordering::Relaxed) {
                                    return;
                                }
                                if let Some(s) = q.pop_front() {
                                    break s;
                                }
                                // Timeout-bounded wait so a missed
                                // notification can never strand the
                                // worker past shutdown.
                                let (guard, _) = conns
                                    .available
                                    .wait_timeout(q, Duration::from_millis(50))
                                    .expect("scrape queue poisoned");
                                q = guard;
                            }
                        };
                        let now = active.fetch_add(1, Ordering::Relaxed) + 1;
                        peak_active.fetch_max(now, Ordering::Relaxed);
                        if serve_one(stream, observer.as_ref(), sampler.as_deref()).is_ok() {
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        active.fetch_sub(1, Ordering::Relaxed);
                    })
                    .expect("spawning scrape worker thread"),
            );
        }

        let stop_flag = Arc::clone(&stop);
        let conns_in = Arc::clone(&conns);
        let rejected_ctr = Arc::clone(&rejected);
        threads.push(
            std::thread::Builder::new()
                .name("wirecap-scrape".into())
                .spawn(move || {
                    while !stop_flag.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                let mut q = conns_in.queue.lock().expect("scrape queue poisoned");
                                if q.len() >= CONN_QUEUE_LIMIT {
                                    // Shed: dropping the stream resets
                                    // the connection. Better a failed
                                    // scrape than unbounded backlog.
                                    rejected_ctr.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    q.push_back(stream);
                                    conns_in.available.notify_one();
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(e) => {
                                eprintln!("wirecap telemetry: scrape accept: {e}");
                                std::thread::sleep(Duration::from_millis(50));
                            }
                        }
                    }
                })
                .expect("spawning scrape thread"),
        );
        Ok(ScrapeServer {
            addr,
            stop,
            served,
            rejected,
            peak_active,
            conns,
            threads,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Connections shed because the bounded queue was full.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Size of the fixed worker pool — the hard cap on threads serving
    /// connections, regardless of client count.
    pub fn worker_threads(&self) -> usize {
        WORKER_THREADS
    }

    /// High-water mark of connections being served at once. Can never
    /// exceed [`ScrapeServer::worker_threads`].
    pub fn peak_active(&self) -> u64 {
        self.peak_active.load(Ordering::Relaxed)
    }

    /// Stops and joins the acceptor and worker threads (idempotent).
    /// An in-flight request finishes on its own worker first, bounded
    /// by the per-connection timeouts; queued-but-unserved connections
    /// are dropped.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.conns.available.notify_all();
        for t in self.threads.drain(..) {
            // A panicking thread must not take the engine down with it
            // from Drop — log and move on.
            if t.join().is_err() {
                eprintln!("wirecap telemetry: scrape thread panicked");
            }
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Reads one request, routes it, writes one response, closes.
fn serve_one(
    mut stream: TcpStream,
    observer: &dyn Observable,
    sampler: Option<&SamplerCore>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let path = match read_request_path(&mut stream) {
        Some(p) => p,
        None => {
            write_response(&mut stream, 400, "text/plain", "bad request\n")?;
            return Ok(());
        }
    };
    match path.as_str() {
        "/metrics" => {
            let body = observer.snapshot().to_prometheus();
            write_response(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/snapshot.json" => {
            let body = observer.snapshot().to_json() + "\n";
            write_response(&mut stream, 200, "application/json", &body)
        }
        "/series.json" => match sampler {
            Some(core) => match series_json(core) {
                Ok(body) => write_response(&mut stream, 200, "application/json", &body),
                Err(e) => {
                    // Serialization failure is a server bug worth a
                    // status code, not a panic in a worker thread.
                    eprintln!("wirecap telemetry: series serialization: {e}");
                    write_response(
                        &mut stream,
                        500,
                        "text/plain",
                        "series serialization failed\n",
                    )
                }
            },
            None => write_response(&mut stream, 404, "text/plain", "no sampler attached\n"),
        },
        "/trace.json" => {
            // Always a well-formed Chrome trace-event array — empty
            // (metadata-only) when span tracing is off — so tooling can
            // probe the route without knowing the engine's config.
            let snap = observer.snapshot();
            let body = crate::spans::chrome_trace_json(&observer.spans(), &snap.workers) + "\n";
            write_response(&mut stream, 200, "application/json", &body)
        }
        "/healthz" => write_response(&mut stream, 200, "text/plain", "ok\n"),
        _ => write_response(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// The `/series.json` document: retained samples plus derived rates.
fn series_json(core: &SamplerCore) -> Result<String, serde_json::JsonError> {
    let doc = SeriesDoc {
        samples: core.samples(),
        anomalies: core.anomalies(),
        series: core.series(),
        rates: core.rates(),
    };
    Ok(serde_json::to_string_pretty(&doc)? + "\n")
}

#[derive(serde::Serialize)]
struct SeriesDoc {
    samples: u64,
    anomalies: u64,
    series: Vec<crate::timeseries::SeriesSample>,
    rates: Vec<crate::timeseries::Rates>,
}

/// Parses the request line (`GET <path> HTTP/1.x`) from the stream.
/// Reads until the header terminator or 4 KiB, whichever comes first.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= 4096 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    // Strip any query string; routes take no parameters.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        500 => "Internal Server Error",
        _ => "Not Found",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{EngineSnapshot, QueueTelemetry};

    struct Fixed;

    impl Observable for Fixed {
        fn snapshot(&self) -> EngineSnapshot {
            let mut q = QueueTelemetry::empty(0);
            q.captured_packets = 42;
            EngineSnapshot {
                engine: "scrape-test".into(),
                tuning: None,
                queues: vec![q],
                workers: Vec::new(),
                copies: sim::stats::CopyMeter::default(),
                latency: sim::stats::LatencyStats::new(),
            }
        }
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut body = String::new();
        s.read_to_string(&mut body).unwrap();
        let status: u16 = body
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let payload = body
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, payload)
    }

    #[test]
    fn serves_metrics_snapshot_and_404() {
        let mut server = ScrapeServer::bind("127.0.0.1:0", Arc::new(Fixed), None).unwrap();
        let addr = server.addr();
        let (status, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(metrics
            .contains("wirecap_captured_packets_total{engine=\"scrape-test\",queue=\"0\"} 42"));
        let (status, snap) = get(addr, "/snapshot.json");
        assert_eq!(status, 200);
        let parsed: EngineSnapshot = serde_json::from_str(&snap).unwrap();
        assert_eq!(parsed.engine, "scrape-test");
        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        let (status, _) = get(addr, "/series.json");
        assert_eq!(status, 404, "no sampler attached");
        let (status, trace) = get(addr, "/trace.json");
        assert_eq!(status, 200);
        let parsed: serde::Value = serde_json::from_str(trace.trim()).unwrap();
        match parsed {
            serde::Value::Arr(evs) => {
                for e in &evs {
                    for key in ["ph", "ts", "pid", "tid"] {
                        assert!(e.field(key).is_some(), "missing {key}: {e:?}");
                    }
                }
            }
            other => panic!("trace.json must be an array, got {other:?}"),
        }
        let (status, ok) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(ok, "ok\n");
        assert!(server.served() >= 5);
        server.stop();
    }

    #[test]
    fn serves_series_when_sampler_attached() {
        use crate::sampler::{SamplerConfig, SamplerState};
        let mut st = SamplerState::new(
            Arc::new(Fixed),
            SamplerConfig {
                anomaly: None,
                ..Default::default()
            },
        );
        st.tick();
        std::thread::sleep(Duration::from_millis(1));
        st.tick();
        let mut server =
            ScrapeServer::bind("127.0.0.1:0", Arc::new(Fixed), Some(st.core())).unwrap();
        let (status, body) = get(server.addr(), "/series.json");
        assert_eq!(status, 200);
        assert!(body.contains("\"series\""), "{body}");
        assert!(body.contains("\"captured_pps\""), "{body}");
        server.stop();
    }

    #[test]
    fn slow_client_does_not_delay_healthz() {
        let mut server = ScrapeServer::bind("127.0.0.1:0", Arc::new(Fixed), None).unwrap();
        let addr = server.addr();
        // A deliberately slow client: connects, sends nothing, and
        // holds the connection open. Before per-connection workers,
        // this parked the single accept loop inside serve_one's 500 ms
        // read timeout and every other request queued behind it.
        let stalled: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();
        // Give the acceptor a beat to accept the stalled connections
        // so they are genuinely in-flight, not still in the backlog.
        std::thread::sleep(Duration::from_millis(30));
        let t0 = std::time::Instant::now();
        let (status, ok) = get(addr, "/healthz");
        let elapsed = t0.elapsed();
        assert_eq!(status, 200);
        assert_eq!(ok, "ok\n");
        assert!(
            elapsed < Duration::from_millis(50),
            "healthz took {elapsed:?} behind stalled clients"
        );
        drop(stalled);
        server.stop();
    }

    #[test]
    fn client_burst_is_bounded_by_the_worker_pool() {
        // 64 simultaneous clients must not mean 64 serving threads:
        // the fixed pool serves them from the bounded queue, and the
        // high-water mark of concurrent serving can never exceed the
        // pool size.
        let mut server = ScrapeServer::bind("127.0.0.1:0", Arc::new(Fixed), None).unwrap();
        let addr = server.addr();
        let clients: Vec<_> = (0..64)
            .map(|_| std::thread::spawn(move || get(addr, "/healthz")))
            .collect();
        for c in clients {
            let (status, body) = c.join().unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, "ok\n");
        }
        assert_eq!(server.worker_threads(), WORKER_THREADS);
        assert!(
            server.peak_active() <= WORKER_THREADS as u64,
            "{} connections served concurrently with a {WORKER_THREADS}-thread pool",
            server.peak_active()
        );
        // A client unblocks when `serve_one` finishes writing its
        // response, just before the worker bumps `served` — so the last
        // increments can still be in flight when the joins above
        // return. Give the counters a bounded beat to settle.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while server.served() < 64 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(server.served(), 64);
        assert_eq!(server.rejected(), 0, "the queue holds a 64-client burst");
        server.stop();
    }
}
