//! The unified snapshot schema: [`QueueTelemetry`] per queue,
//! [`EngineSnapshot`] per engine, JSON and Prometheus text exposition.
//!
//! Every engine — the live threaded `LiveWireCap`, the simulation
//! `WireCapEngine`, and the baseline models — returns this exact type
//! from `CaptureEngine::telemetry(q)`, so figure binaries, the apps
//! harness and the hotpath bench all emit one schema.

use crate::hist::{bucket_upper_edge, HistogramSnapshot};
use crate::spans::WorkerTelemetry;
use serde::{Deserialize, Serialize};
use sim::stats::{CopyMeter, LatencyStats};
use sim::DropStats;
use std::fmt::Write as _;

/// Point-in-time telemetry for one capture queue.
///
/// Naming scheme (DESIGN.md §4.8): packet counters end in `_packets`,
/// chunk counters in `_chunks`; gauges carry no suffix. Monotonic
/// counters and gauges may be mutually inconsistent by a few in-flight
/// packets when snapshotted while capture threads run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueueTelemetry {
    /// Queue index.
    pub queue: usize,
    /// Packets offered to this queue (NIC-received plus NIC-dropped).
    pub offered_packets: u64,
    /// Packets landed in pool chunks (or the baseline's ring/buffer).
    pub captured_packets: u64,
    /// Packets handed to the application.
    pub delivered_packets: u64,
    /// Capture-side losses: pool or capture ring exhausted.
    pub capture_drop_packets: u64,
    /// Captured packets discarded before delivery.
    pub delivery_drop_packets: u64,
    /// Frames the NIC dropped before the engine saw them (ring full).
    pub nic_drop_packets: u64,
    /// Packets forwarded by the middlebox path (0 when not forwarding).
    pub forwarded_packets: u64,
    /// Forwarded packets actually put on the wire by the TX path.
    pub transmitted_packets: u64,
    /// Chunks sealed and handed toward user space.
    pub sealed_chunks: u64,
    /// Sealed chunks that were partial (capture-timeout flushes).
    pub partial_chunks: u64,
    /// Chunks recycled back to the pool.
    pub recycled_chunks: u64,
    /// Chunks buddies placed on this queue.
    pub offloaded_in_chunks: u64,
    /// Chunks this queue placed on buddies.
    pub offloaded_out_chunks: u64,
    /// Packets written to capture files by the disk sink (0 when no
    /// sink is attached).
    pub disk_written_packets: u64,
    /// Packets dropped because the disk writer fell behind — the
    /// capture-to-disk subsystem's explicit graceful-degradation drop.
    pub disk_drop_packets: u64,
    /// Chunks this queue's primary pool worker stole from other
    /// workers' deques (0 when no `ConsumerPool` is attached).
    pub steal_in_chunks: u64,
    /// Chunks homed on this queue that other pool workers stole.
    pub steal_out_chunks: u64,
    /// Packets inside chunks stolen from this queue
    /// (`Σ steal_in_chunks == Σ steal_out_chunks` engine-wide).
    pub stolen_packets: u64,
    /// Times a pool worker owning this queue parked on the delivery
    /// gate (adaptive polling reached the park stage). Every owning
    /// worker charges its parks to each of its owned queues.
    pub worker_parks: u64,
    /// Claim CAS races lost on this queue's claim queue (0 unless
    /// concurrent single-queue mode is active).
    pub claim_contention: u64,
    /// Packets recorded into a flow table by the flow-analytics stage
    /// (0 unless a flow sink is attached).
    pub flow_tracked_packets: u64,
    /// Flows displaced from the flow table by per-set LRU eviction.
    pub flow_evicted_flows: u64,
    /// Packets folded into the flow-table eviction aggregate (live
    /// per-flow sums + this == `flow_tracked_packets`).
    pub flow_evicted_packets: u64,
    /// Occupied non-matching flow-table slots scanned during lookups.
    pub flow_hash_collisions: u64,
    /// Gauge: occupancy of the primary pool worker's steal deque.
    pub steal_queue_len: u64,
    /// Gauge: chunks parked in this queue's in-order reorder buffer
    /// (0 unless in-order concurrent mode is active).
    pub reorder_occupancy: u64,
    /// Gauge: live flows resident in the flow tables of this queue's
    /// processing workers (0 unless a flow sink is attached).
    pub flow_table_occupancy: u64,
    /// Gauge: chunks currently waiting on this queue's capture queue.
    pub capture_queue_len: u64,
    /// High-watermark of `capture_queue_len` since engine start (the
    /// deepest this queue's capture queue has ever been, in chunks).
    pub capture_queue_watermark: u64,
    /// Gauge: free chunks in this queue's pool (or free ring slots).
    pub free_chunks: u64,
    /// Gauge: ring descriptors armed and ready for the NIC.
    pub ring_ready: u64,
    /// Gauge: ring descriptors holding received, unharvested frames.
    pub ring_used: u64,
    /// Destination capture-queue depth at each placement decision.
    pub capture_queue_depth: HistogramSnapshot,
    /// Packets per sealed chunk (partials show up short).
    pub chunk_fill: HistogramSnapshot,
    /// Chunks (or packets, for copy baselines) per handoff batch.
    pub batch_size: HistogramSnapshot,
    /// Capture-to-delivery latency per chunk, ns: the chunk's seal
    /// timestamp to its consumption/recycle. One clock read per chunk,
    /// never per packet, so the hot path stays flat (§5c).
    pub latency_ns: HistogramSnapshot,
    /// p99.9 of `latency_ns` (sub-bucket interpolated — see
    /// [`HistogramSnapshot::quantile`]), derived at snapshot time —
    /// the first-class tail-latency number the SLO gate rests on.
    pub latency_p999_ns: u64,
    /// Sampled-span stage (see `telemetry::spans`): seal → ring
    /// publish. Only 1-in-N chunks are sampled, so `count` tracks
    /// `sealed_chunks / span_sample_n`, not `sealed_chunks`.
    pub stage_backend_ns: HistogramSnapshot,
    /// Sampled-span stage: ring publish → winning acquisition attempt.
    pub stage_queue_wait_ns: HistogramSnapshot,
    /// Sampled-span stage: acquisition attempt → ownership (claim-CAS
    /// window).
    pub stage_claim_ns: HistogramSnapshot,
    /// Sampled-span stage: ownership → delivery start (reorder-buffer
    /// residency).
    pub stage_reorder_ns: HistogramSnapshot,
    /// Sampled-span stage: delivery start → end (handler time).
    pub stage_deliver_ns: HistogramSnapshot,
    /// Sampled-span stage: disk handoff → write-batch commit (0 unless
    /// a disk sink is attached).
    pub stage_disk_ns: HistogramSnapshot,
}

impl QueueTelemetry {
    /// An all-zero snapshot for queue `queue`.
    pub fn empty(queue: usize) -> Self {
        QueueTelemetry {
            queue,
            ..Default::default()
        }
    }

    /// Folds another queue's telemetry into this one. Counters and
    /// gauges add; histograms merge bucket-wise; `queue` keeps its
    /// value.
    pub fn merge(&mut self, other: &QueueTelemetry) {
        self.offered_packets += other.offered_packets;
        self.captured_packets += other.captured_packets;
        self.delivered_packets += other.delivered_packets;
        self.capture_drop_packets += other.capture_drop_packets;
        self.delivery_drop_packets += other.delivery_drop_packets;
        self.nic_drop_packets += other.nic_drop_packets;
        self.forwarded_packets += other.forwarded_packets;
        self.transmitted_packets += other.transmitted_packets;
        self.sealed_chunks += other.sealed_chunks;
        self.partial_chunks += other.partial_chunks;
        self.recycled_chunks += other.recycled_chunks;
        self.offloaded_in_chunks += other.offloaded_in_chunks;
        self.offloaded_out_chunks += other.offloaded_out_chunks;
        self.disk_written_packets += other.disk_written_packets;
        self.disk_drop_packets += other.disk_drop_packets;
        self.steal_in_chunks += other.steal_in_chunks;
        self.steal_out_chunks += other.steal_out_chunks;
        self.stolen_packets += other.stolen_packets;
        self.worker_parks += other.worker_parks;
        self.claim_contention += other.claim_contention;
        self.flow_tracked_packets += other.flow_tracked_packets;
        self.flow_evicted_flows += other.flow_evicted_flows;
        self.flow_evicted_packets += other.flow_evicted_packets;
        self.flow_hash_collisions += other.flow_hash_collisions;
        self.steal_queue_len += other.steal_queue_len;
        self.reorder_occupancy += other.reorder_occupancy;
        self.flow_table_occupancy += other.flow_table_occupancy;
        self.capture_queue_len += other.capture_queue_len;
        self.capture_queue_watermark = self
            .capture_queue_watermark
            .max(other.capture_queue_watermark);
        self.free_chunks += other.free_chunks;
        self.ring_ready += other.ring_ready;
        self.ring_used += other.ring_used;
        self.capture_queue_depth.merge(&other.capture_queue_depth);
        self.chunk_fill.merge(&other.chunk_fill);
        self.batch_size.merge(&other.batch_size);
        self.latency_ns.merge(&other.latency_ns);
        self.stage_backend_ns.merge(&other.stage_backend_ns);
        self.stage_queue_wait_ns.merge(&other.stage_queue_wait_ns);
        self.stage_claim_ns.merge(&other.stage_claim_ns);
        self.stage_reorder_ns.merge(&other.stage_reorder_ns);
        self.stage_deliver_ns.merge(&other.stage_deliver_ns);
        self.stage_disk_ns.merge(&other.stage_disk_ns);
        // The merged tail quantile must come from the merged
        // distribution, not from adding per-queue quantiles.
        self.latency_p999_ns = self.latency_ns.quantile(0.999);
    }

    /// The figure-code view of this queue's drop accounting.
    pub fn drop_stats(&self) -> DropStats {
        DropStats::from(self)
    }
}

/// Bridge to the simulation vocabulary, so figure code keeps compiling:
/// NIC drops and engine capture drops both land in `capture_drops`
/// (the paper does not distinguish where before-capture losses occur).
impl From<&QueueTelemetry> for DropStats {
    fn from(t: &QueueTelemetry) -> DropStats {
        DropStats {
            offered: t.offered_packets,
            captured: t.captured_packets,
            delivered: t.delivered_packets,
            capture_drops: t.capture_drop_packets + t.nic_drop_packets,
            delivery_drops: t.delivery_drop_packets,
        }
    }
}

/// Owned-value variant of the [`DropStats`] bridge.
impl From<QueueTelemetry> for DropStats {
    fn from(t: QueueTelemetry) -> DropStats {
        DropStats::from(&t)
    }
}

/// How an engine's pool geometry was derived by the tuning sizing
/// pass (DESIGN.md §4.16). Logged into [`EngineSnapshot`] so a
/// capture's cache-budget decisions are auditable after the fact.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TuningTelemetry {
    /// `"throughput"` or `"cache_resident"`.
    pub mode: String,
    /// Target LLC budget in bytes (0 in throughput mode).
    pub llc_bytes: u64,
    /// Queue count the budget was split across.
    pub queues: u64,
    /// Configured pool chunks per queue (R before the sizing pass).
    pub r_configured: u64,
    /// Effective pool chunks per queue the engine runs with.
    pub r_effective: u64,
    /// Effective cells per chunk (M after the sizing pass).
    pub m_effective: u64,
    /// Max sealed-but-unrecycled chunks per queue before consumers
    /// prioritize recycling (0 = unbounded lazy recycle).
    pub recycle_depth: u64,
    /// Estimated per-queue hot working set at the effective geometry.
    pub working_set_bytes: u64,
}

/// Full engine snapshot: one [`QueueTelemetry`] per queue plus the
/// engine-wide copy and latency meters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Engine display name (e.g. `WireCAP-A-(64, 20, 60%)`).
    pub engine: String,
    /// The tuning sizing pass that produced the engine's pool
    /// geometry (`None` for engines without a tuned pool).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub tuning: Option<TuningTelemetry>,
    /// Per-queue telemetry, indexed by queue.
    pub queues: Vec<QueueTelemetry>,
    /// Per-pool-worker time-state profiles (empty unless a
    /// `ConsumerPool` runs with span tracing enabled).
    pub workers: Vec<WorkerTelemetry>,
    /// Packets/bytes copied outside the zero-copy path.
    pub copies: CopyMeter,
    /// Capture-to-delivery latency distribution.
    pub latency: LatencyStats,
}

impl EngineSnapshot {
    /// Sum of all queues' telemetry (the `queue` field is the queue
    /// count).
    pub fn total(&self) -> QueueTelemetry {
        let mut total = QueueTelemetry::empty(self.queues.len());
        for q in &self.queues {
            total.merge(q);
        }
        total
    }

    /// Engine-wide drop accounting in the figure-code vocabulary.
    pub fn total_drop_stats(&self) -> DropStats {
        DropStats::from(&self.total())
    }

    /// Pretty-printed JSON (the schema the fig binaries emit).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("EngineSnapshot serializes")
    }

    /// Prometheus text exposition (metric names `wirecap_*`, labels
    /// `engine` and `queue`; histograms use cumulative `_bucket{le=…}`
    /// lines with power-of-two edges).
    pub fn to_prometheus(&self) -> String {
        /// A named accessor over one `QueueTelemetry` scalar.
        type Field = (&'static str, fn(&QueueTelemetry) -> u64);
        /// A named accessor over one `QueueTelemetry` histogram.
        type HistField = (&'static str, fn(&QueueTelemetry) -> &HistogramSnapshot);
        let mut out = String::new();
        let engine = self.engine.replace('"', "'");
        let counters: [Field; 24] = [
            ("offered_packets", |t| t.offered_packets),
            ("captured_packets", |t| t.captured_packets),
            ("delivered_packets", |t| t.delivered_packets),
            ("capture_drop_packets", |t| t.capture_drop_packets),
            ("delivery_drop_packets", |t| t.delivery_drop_packets),
            ("nic_drop_packets", |t| t.nic_drop_packets),
            ("forwarded_packets", |t| t.forwarded_packets),
            ("transmitted_packets", |t| t.transmitted_packets),
            ("sealed_chunks", |t| t.sealed_chunks),
            ("partial_chunks", |t| t.partial_chunks),
            ("recycled_chunks", |t| t.recycled_chunks),
            ("offloaded_in_chunks", |t| t.offloaded_in_chunks),
            ("offloaded_out_chunks", |t| t.offloaded_out_chunks),
            ("disk_written_packets", |t| t.disk_written_packets),
            ("disk_drop_packets", |t| t.disk_drop_packets),
            ("steal_in_chunks", |t| t.steal_in_chunks),
            ("steal_out_chunks", |t| t.steal_out_chunks),
            ("stolen_packets", |t| t.stolen_packets),
            ("worker_parks", |t| t.worker_parks),
            ("claim_contention", |t| t.claim_contention),
            ("flow_tracked_packets", |t| t.flow_tracked_packets),
            ("flow_evicted_flows", |t| t.flow_evicted_flows),
            ("flow_evicted_packets", |t| t.flow_evicted_packets),
            ("flow_hash_collisions", |t| t.flow_hash_collisions),
        ];
        for (name, get) in counters {
            let _ = writeln!(out, "# TYPE wirecap_{name}_total counter");
            for t in &self.queues {
                let _ = writeln!(
                    out,
                    "wirecap_{name}_total{{engine=\"{engine}\",queue=\"{}\"}} {}",
                    t.queue,
                    get(t)
                );
            }
        }
        let gauges: [Field; 9] = [
            ("latency_p999_ns", |t| t.latency_p999_ns),
            ("steal_queue_len", |t| t.steal_queue_len),
            ("reorder_occupancy", |t| t.reorder_occupancy),
            ("flow_table_occupancy", |t| t.flow_table_occupancy),
            ("capture_queue_len", |t| t.capture_queue_len),
            ("capture_queue_watermark", |t| t.capture_queue_watermark),
            ("free_chunks", |t| t.free_chunks),
            ("ring_ready", |t| t.ring_ready),
            ("ring_used", |t| t.ring_used),
        ];
        for (name, get) in gauges {
            let _ = writeln!(out, "# TYPE wirecap_{name} gauge");
            for t in &self.queues {
                let _ = writeln!(
                    out,
                    "wirecap_{name}{{engine=\"{engine}\",queue=\"{}\"}} {}",
                    t.queue,
                    get(t)
                );
            }
        }
        let hists: [HistField; 10] = [
            ("capture_queue_depth", |t| &t.capture_queue_depth),
            ("chunk_fill", |t| &t.chunk_fill),
            ("batch_size", |t| &t.batch_size),
            ("latency_ns", |t| &t.latency_ns),
            ("stage_backend_ns", |t| &t.stage_backend_ns),
            ("stage_queue_wait_ns", |t| &t.stage_queue_wait_ns),
            ("stage_claim_ns", |t| &t.stage_claim_ns),
            ("stage_reorder_ns", |t| &t.stage_reorder_ns),
            ("stage_deliver_ns", |t| &t.stage_deliver_ns),
            ("stage_disk_ns", |t| &t.stage_disk_ns),
        ];
        for (name, get) in hists {
            let _ = writeln!(out, "# TYPE wirecap_{name} histogram");
            for t in &self.queues {
                let h = get(t);
                let labels = format!("engine=\"{engine}\",queue=\"{}\"", t.queue);
                let mut cum = 0u64;
                for (i, &n) in h.buckets.iter().enumerate() {
                    cum += n;
                    let _ = writeln!(
                        out,
                        "wirecap_{name}_bucket{{{labels},le=\"{}\"}} {cum}",
                        bucket_upper_edge(i)
                    );
                }
                let _ = writeln!(
                    out,
                    "wirecap_{name}_bucket{{{labels},le=\"+Inf\"}} {}",
                    h.count
                );
                let _ = writeln!(out, "wirecap_{name}_sum{{{labels}}} {}", h.sum);
                let _ = writeln!(out, "wirecap_{name}_count{{{labels}}} {}", h.count);
            }
        }
        if !self.workers.is_empty() {
            let _ = writeln!(out, "# TYPE wirecap_worker_state_ns_total counter");
            for w in &self.workers {
                for (state, ns) in [
                    ("spin", w.spin_ns),
                    ("yield", w.yield_ns),
                    ("park", w.park_ns),
                    ("claim", w.claim_ns),
                    ("deliver", w.deliver_ns),
                    ("steal", w.steal_ns),
                ] {
                    let _ = writeln!(
                        out,
                        "wirecap_worker_state_ns_total{{engine=\"{engine}\",worker=\"{}\",state=\"{state}\"}} {ns}",
                        w.worker
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineSnapshot {
        let mut q0 = QueueTelemetry::empty(0);
        q0.offered_packets = 100;
        q0.captured_packets = 90;
        q0.delivered_packets = 88;
        q0.capture_drop_packets = 7;
        q0.nic_drop_packets = 3;
        q0.delivery_drop_packets = 2;
        q0.disk_written_packets = 80;
        q0.disk_drop_packets = 8;
        q0.steal_in_chunks = 4;
        q0.steal_out_chunks = 4;
        q0.stolen_packets = 40;
        q0.worker_parks = 2;
        q0.claim_contention = 6;
        q0.flow_tracked_packets = 88;
        q0.flow_evicted_flows = 1;
        q0.flow_evicted_packets = 4;
        q0.flow_hash_collisions = 9;
        q0.steal_queue_len = 3;
        q0.reorder_occupancy = 2;
        q0.flow_table_occupancy = 12;
        q0.chunk_fill.count = 2;
        q0.chunk_fill.sum = 90;
        q0.chunk_fill.max = 64;
        q0.chunk_fill.buckets = vec![0, 0, 0, 0, 0, 1, 0, 1];
        q0.capture_queue_watermark = 5;
        q0.latency_ns.count = 1;
        q0.latency_ns.sum = 1500;
        q0.latency_ns.max = 1500;
        q0.latency_ns.buckets = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        q0.latency_p999_ns = q0.latency_ns.quantile(0.999);
        q0.stage_deliver_ns.count = 1;
        q0.stage_deliver_ns.sum = 700;
        q0.stage_deliver_ns.max = 700;
        q0.stage_deliver_ns.buckets = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        EngineSnapshot {
            engine: "test".into(),
            tuning: None,
            queues: vec![q0, QueueTelemetry::empty(1)],
            workers: vec![WorkerTelemetry {
                worker: 0,
                spin_ns: 11,
                deliver_ns: 400,
                ..Default::default()
            }],
            copies: CopyMeter::default(),
            latency: LatencyStats::default(),
        }
    }

    #[test]
    fn drop_stats_bridge_is_consistent() {
        let snap = sample();
        let ds = snap.total_drop_stats();
        assert_eq!(ds.offered, 100);
        assert_eq!(ds.captured, 90);
        assert_eq!(ds.delivered, 88);
        assert_eq!(ds.capture_drops, 10, "nic + capture drops unify");
        assert_eq!(ds.delivery_drops, 2);
        assert!(ds.is_consistent());
    }

    #[test]
    fn json_round_trips() {
        let snap = sample();
        let json = snap.to_json();
        let back: EngineSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.engine, snap.engine);
        assert_eq!(back.queues, snap.queues);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE wirecap_captured_packets_total counter"));
        assert!(text.contains("wirecap_captured_packets_total{engine=\"test\",queue=\"0\"} 90"));
        assert!(text.contains("# TYPE wirecap_chunk_fill histogram"));
        assert!(
            text.contains("wirecap_chunk_fill_bucket{engine=\"test\",queue=\"0\",le=\"+Inf\"} 2")
        );
        assert!(text.contains("wirecap_chunk_fill_sum{engine=\"test\",queue=\"0\"} 90"));
        // Cumulative buckets end at the total count.
        assert!(text.contains("le=\"128\"} 2"));
        assert!(text.contains("# TYPE wirecap_disk_drop_packets_total counter"));
        assert!(text.contains("wirecap_disk_written_packets_total{engine=\"test\",queue=\"0\"} 80"));
        assert!(text.contains("wirecap_disk_drop_packets_total{engine=\"test\",queue=\"0\"} 8"));
        assert!(text.contains("# TYPE wirecap_steal_out_chunks_total counter"));
        assert!(text.contains("wirecap_stolen_packets_total{engine=\"test\",queue=\"0\"} 40"));
        assert!(text.contains("# TYPE wirecap_steal_queue_len gauge"));
        assert!(text.contains("wirecap_steal_queue_len{engine=\"test\",queue=\"0\"} 3"));
        assert!(text.contains("# TYPE wirecap_claim_contention_total counter"));
        assert!(text.contains("wirecap_claim_contention_total{engine=\"test\",queue=\"0\"} 6"));
        assert!(text.contains("# TYPE wirecap_reorder_occupancy gauge"));
        assert!(text.contains("wirecap_reorder_occupancy{engine=\"test\",queue=\"0\"} 2"));
        assert!(text.contains("# TYPE wirecap_flow_tracked_packets_total counter"));
        assert!(text.contains("wirecap_flow_tracked_packets_total{engine=\"test\",queue=\"0\"} 88"));
        assert!(text.contains("wirecap_flow_evicted_packets_total{engine=\"test\",queue=\"0\"} 4"));
        assert!(text.contains("wirecap_flow_hash_collisions_total{engine=\"test\",queue=\"0\"} 9"));
        assert!(text.contains("# TYPE wirecap_flow_table_occupancy gauge"));
        assert!(text.contains("wirecap_flow_table_occupancy{engine=\"test\",queue=\"0\"} 12"));
        assert!(text.contains("# TYPE wirecap_capture_queue_watermark gauge"));
        assert!(text.contains("wirecap_capture_queue_watermark{engine=\"test\",queue=\"0\"} 5"));
        assert!(text.contains("# TYPE wirecap_latency_ns histogram"));
        assert!(text.contains("wirecap_latency_ns_sum{engine=\"test\",queue=\"0\"} 1500"));
        assert!(text.contains("# TYPE wirecap_latency_p999_ns gauge"));
        // A single 1500 ns sample: interpolation anchors the last
        // non-empty bucket at the observed max, so p99.9 is exact.
        assert!(text.contains("wirecap_latency_p999_ns{engine=\"test\",queue=\"0\"} 1500"));
        assert!(text.contains("# TYPE wirecap_stage_deliver_ns histogram"));
        assert!(text.contains("wirecap_stage_deliver_ns_sum{engine=\"test\",queue=\"0\"} 700"));
        assert!(text.contains("# TYPE wirecap_stage_disk_ns histogram"));
        assert!(text.contains("# TYPE wirecap_worker_state_ns_total counter"));
        assert!(text.contains(
            "wirecap_worker_state_ns_total{engine=\"test\",worker=\"0\",state=\"spin\"} 11"
        ));
        assert!(text.contains(
            "wirecap_worker_state_ns_total{engine=\"test\",worker=\"0\",state=\"deliver\"} 400"
        ));
    }

    #[test]
    fn merge_sums_queues() {
        let snap = sample();
        let total = snap.total();
        assert_eq!(total.queue, 2);
        assert_eq!(total.offered_packets, 100);
        assert_eq!(total.chunk_fill.count, 2);
        assert_eq!(total.capture_queue_watermark, 5, "watermarks merge as max");
        assert_eq!(total.flow_tracked_packets, 88);
        assert_eq!(total.flow_table_occupancy, 12, "occupancy levels sum");
        assert_eq!(total.latency_ns.count, 1);
        assert_eq!(total.stage_deliver_ns.count, 1, "stage histograms merge");
        assert_eq!(
            total.latency_p999_ns,
            total.latency_ns.quantile(0.999),
            "merged p99.9 derives from the merged distribution"
        );
    }
}
