//! Fixed-bucket log2 histograms, lock-free and allocation-free.
//!
//! [`Log2Histogram`] is the recording side: 64 relaxed atomic buckets,
//! safe to hammer from the hot path. [`HistogramSnapshot`] is the
//! serializable point-in-time copy carried inside
//! [`crate::QueueTelemetry`].

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets; enough for any `u64` value.
pub const BUCKETS: usize = 64;

/// Bucket index for a value: bucket 0 counts zeros, bucket `i ≥ 1`
/// counts values in `[2^(i-1), 2^i)`, and the last bucket absorbs the
/// tail.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// A fixed-bucket power-of-two histogram with relaxed-atomic recording.
///
/// Used for capture-queue depth, chunk fill level and handoff batch
/// sizes. Recording is one relaxed `fetch_add` per sample (plus a
/// `fetch_max` for the running maximum) — no locks, no allocation.
#[derive(Debug)]
pub struct Log2Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    ///
    /// Single-writer semantics: each field is updated with a relaxed
    /// load + store rather than a read-modify-write, so recording costs
    /// plain `mov`s on x86. Histograms live in the capture thread's
    /// shard (`CaptureSide`), which has exactly one writer; concurrent
    /// snapshot readers stay safe because every store is still atomic.
    pub fn record(&self, v: u64) {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        self.count.store(load(&self.count) + 1, Ordering::Relaxed);
        self.sum.store(load(&self.sum) + v, Ordering::Relaxed);
        if v > load(&self.max) {
            self.max.store(v, Ordering::Relaxed);
        }
        let b = &self.buckets[bucket_index(v)];
        b.store(load(b) + 1, Ordering::Relaxed);
    }

    /// Records `n` samples of the same value with one set of scalar
    /// updates — the cost of a single [`Self::record`], whatever `n`.
    /// Same single-writer discipline.
    ///
    /// This is the primitive behind run-length recording: latency
    /// samples from a consumer inbox refill or a bench drain share one
    /// delivery stamp, and every chunk sealed in the same capture poll
    /// batch shares one seal stamp, so the intervals arrive in a
    /// handful of long runs of identical values. [`RunRecorder`] feeds
    /// those runs here.
    pub fn record_repeat(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        self.count.store(load(&self.count) + n, Ordering::Relaxed);
        self.sum.store(load(&self.sum) + v * n, Ordering::Relaxed);
        if v > load(&self.max) {
            self.max.store(v, Ordering::Relaxed);
        }
        let b = &self.buckets[bucket_index(v)];
        b.store(load(b) + n, Ordering::Relaxed);
    }

    /// Records a batch of samples, collapsing runs of equal values
    /// into single [`Self::record_repeat`] calls. Observationally
    /// identical to recording each sample in order. Prefer
    /// [`RunRecorder`] on hot paths that would otherwise have to
    /// buffer the samples first.
    pub fn record_batch(&self, values: &[u64]) {
        let mut runs = RunRecorder::new(self);
        for &v in values {
            runs.push(v);
        }
        runs.finish();
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes a serializable point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Streams samples that arrive in runs of identical values into a
/// [`Log2Histogram`], flushing one [`Log2Histogram::record_repeat`]
/// per run.
///
/// On the hot path this turns histogram recording into a `u64`
/// compare and an increment per sample: a consumer inbox refill or a
/// bench drain produces intervals from one shared delivery stamp and
/// poll-batch-shared seal stamps, so a whole batch is typically one
/// to three runs. Call [`Self::finish`] to flush the trailing run —
/// dropping the recorder without it loses that run, deliberately, so
/// the flush stays explicit on the path that pays for it.
pub struct RunRecorder<'a> {
    hist: &'a Log2Histogram,
    value: u64,
    len: u64,
}

impl<'a> RunRecorder<'a> {
    /// Starts an empty run stream into `hist`.
    pub fn new(hist: &'a Log2Histogram) -> Self {
        RunRecorder {
            hist,
            value: 0,
            len: 0,
        }
    }

    /// Adds one sample: extends the current run when the value
    /// repeats, otherwise flushes the run and starts a new one.
    #[inline]
    pub fn push(&mut self, v: u64) {
        if self.len > 0 && v == self.value {
            self.len += 1;
        } else {
            if self.len > 0 {
                self.hist.record_repeat(self.value, self.len);
            }
            self.value = v;
            self.len = 1;
        }
    }

    /// Flushes the trailing run.
    pub fn finish(self) {
        if self.len > 0 {
            self.hist.record_repeat(self.value, self.len);
        }
    }
}

/// Point-in-time copy of a [`Log2Histogram`].
///
/// `buckets[0]` counts zero samples; `buckets[i]` for `i ≥ 1` counts
/// samples in `[2^(i-1), 2^i)`. Trailing empty buckets are trimmed so
/// idle histograms serialize compactly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Per-bucket sample counts, trailing zeros trimmed.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile sample value, `q` in `[0, 1]`, with sub-bucket
    /// linear interpolation. Returns 0 when empty.
    ///
    /// The rank-`r` sample (`r = ceil(q·count)`, clamped to
    /// `[1, count]`) is located in its bucket, then its value is
    /// interpolated linearly between the bucket's bounds by the rank's
    /// position among the bucket's samples. Two anchors keep the
    /// estimate inside observed data: the top non-empty bucket
    /// interpolates toward the recorded `max` rather than the bucket's
    /// nominal upper edge (so `q → 1` converges on an observed value,
    /// and a single sample is returned exactly), and when every sample
    /// equals `max` (`count·max == sum`) that exact value is returned
    /// for any `q`. The result is monotone in `q` and always lies in
    /// the same log2 bucket as the true rank-`r` sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // All samples identical (only possible when each equals max):
        // the quantile is that value, no interpolation error.
        if self.max.checked_mul(self.count) == Some(self.sum) {
            return self.max;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let pos = rank - seen; // 1..=n within this bucket
                let lo = bucket_lower_edge(i);
                let last_nonempty = self.buckets[i + 1..].iter().all(|&b| b == 0);
                let hi = if last_nonempty {
                    self.max
                } else {
                    bucket_upper_edge(i).saturating_sub(1)
                }
                .max(lo);
                let v = lo as f64 + (hi - lo) as f64 * (pos as f64 / n as f64);
                return (v.round() as u64).clamp(lo, hi);
            }
            seen += n;
        }
        self.max
    }

    /// Folds another snapshot into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, &b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Bridge from the simulation's latency accumulator, so sim engines
/// expose `latency_ns` in the same schema the live engine records
/// natively. `LatencyStats` bucket `i` covers `[2^i, 2^(i+1))` ns,
/// which is [`HistogramSnapshot`] bucket `i + 1` (bucket 0 here counts
/// exact zeros, which `LatencyStats` clamps into its bucket 0).
impl From<&sim::stats::LatencyStats> for HistogramSnapshot {
    fn from(l: &sim::stats::LatencyStats) -> HistogramSnapshot {
        let mut buckets = vec![0u64];
        buckets.extend_from_slice(l.buckets());
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            count: l.count(),
            sum: l.sum_ns(),
            max: l.max_ns(),
            buckets,
        }
    }
}

/// Exclusive upper edge of bucket `i` (0 for the zero bucket).
pub fn bucket_upper_edge(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// Inclusive lower edge of bucket `i` (0 for the zero bucket).
pub fn bucket_lower_edge(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    /// `record_batch` must be observationally identical to a sequence
    /// of `record` calls — including on the run-heavy inputs its
    /// run-length scan is optimized for (shared delivery stamps) and
    /// on run-free inputs where every run has length one.
    #[test]
    fn record_batch_matches_sequential_records() {
        let cases: [&[u64]; 5] = [
            &[],
            &[7; 64],
            &[0, 0, 0, 5, 5, 1024, 1024, 1024, 3],
            &[1, 2, 4, 8, 16, u64::MAX >> 1],
            &[9, 9, 0, 9, 9],
        ];
        for values in cases {
            let batched = Log2Histogram::new();
            batched.record_batch(values);
            let sequential = Log2Histogram::new();
            for &v in values {
                sequential.record(v);
            }
            assert_eq!(
                batched.snapshot(),
                sequential.snapshot(),
                "diverged on {values:?}"
            );
        }
    }

    #[test]
    fn record_and_snapshot() {
        let h = Log2Histogram::new();
        for v in [0u64, 1, 1, 3, 64] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 69);
        assert_eq!(s.max, 64);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[7], 1);
        assert_eq!(s.buckets.len(), 8, "trailing zeros trimmed");
        assert!((s.mean() - 13.8).abs() < 1e-9);
    }

    #[test]
    fn quantile_and_merge() {
        let h = Log2Histogram::new();
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let mut s = h.snapshot();
        // Bucket 1 is [1, 2): interpolation collapses to the exact value.
        assert_eq!(s.quantile(0.5), 1);
        // Rank 99 is the 9th of 10 samples in [512, 1024); the top
        // bucket interpolates toward max=1000: 512 + 488·(9/10) ≈ 951.
        assert_eq!(s.quantile(0.99), 951);
        let other = s.clone();
        s.merge(&other);
        assert_eq!(s.count, 200);
        assert_eq!(s.buckets[1], 180);
    }

    #[test]
    fn quantile_exact_on_single_bucket_data() {
        // All samples identical: every quantile is that exact value,
        // even though the bucket spans [1024, 2048).
        let h = Log2Histogram::new();
        for _ in 0..37 {
            h.record(1500);
        }
        let s = h.snapshot();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(s.quantile(q), 1500, "q={q}");
        }
        // A single sample anywhere is returned exactly.
        let h = Log2Histogram::new();
        h.record(777);
        assert_eq!(h.snapshot().quantile(0.999), 777);
        // All-zero samples stay exactly zero.
        let h = Log2Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.snapshot().quantile(0.5), 0);
    }

    #[test]
    fn quantile_monotone_and_bounded() {
        let h = Log2Histogram::new();
        for v in [0u64, 3, 3, 17, 120, 121, 300, 5000, 5001, 1 << 40] {
            h.record(v);
        }
        let s = h.snapshot();
        let mut prev = 0u64;
        for i in 0..=1000 {
            let q = i as f64 / 1000.0;
            let v = s.quantile(q);
            assert!(v >= prev, "quantile not monotone at q={q}: {v} < {prev}");
            assert!(v <= s.max, "quantile exceeds max at q={q}");
            prev = v;
        }
        assert_eq!(s.quantile(1.0), s.max, "q=1 converges on the max");
    }

    proptest::proptest! {
        /// Against a sorted-vec reference: the interpolated quantile
        /// always lands in the same log2 bucket as the true rank-r
        /// sample, and never exceeds the observed max.
        #[test]
        fn quantile_tracks_sorted_reference(
            mut samples in proptest::collection::vec(0u64..1_000_000, 1..200),
            qs_mille in proptest::collection::vec(0u32..=1000, 1..20),
        ) {
            let h = Log2Histogram::new();
            for &v in &samples {
                h.record(v);
            }
            let s = h.snapshot();
            samples.sort_unstable();
            for &qm in &qs_mille {
                let q = f64::from(qm) / 1000.0;
                let rank = ((q * samples.len() as f64).ceil() as usize)
                    .clamp(1, samples.len());
                let truth = samples[rank - 1];
                let est = s.quantile(q);
                proptest::prop_assert_eq!(
                    bucket_index(est),
                    bucket_index(truth),
                    "q={} est={} truth={}",
                    q,
                    est,
                    truth
                );
                proptest::prop_assert!(est <= s.max);
            }
        }
    }

    #[test]
    fn latency_stats_bridge_shifts_buckets_by_one() {
        let mut l = sim::stats::LatencyStats::new();
        l.record(1); // LatencyStats bucket 0: [1, 2)
        l.record(1000); // LatencyStats bucket 9: [512, 1024)
        let s = HistogramSnapshot::from(&l);
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 1001);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 0, "no exact zeros");
        assert_eq!(s.buckets[1], 1, "[1, 2) lands in snapshot bucket 1");
        assert_eq!(s.buckets[10], 1, "[512, 1024) lands in snapshot bucket 10");
        // Same mapping a native Log2Histogram would produce.
        let h = Log2Histogram::new();
        h.record(1);
        h.record(1000);
        assert_eq!(h.snapshot().buckets, s.buckets);
    }

    #[test]
    fn empty_serializes_compactly() {
        let s = Log2Histogram::new().snapshot();
        assert!(s.is_empty());
        assert!(s.buckets.is_empty());
        assert_eq!(s.quantile(0.5), 0);
    }
}
