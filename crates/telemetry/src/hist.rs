//! Fixed-bucket log2 histograms, lock-free and allocation-free.
//!
//! [`Log2Histogram`] is the recording side: 64 relaxed atomic buckets,
//! safe to hammer from the hot path. [`HistogramSnapshot`] is the
//! serializable point-in-time copy carried inside
//! [`crate::QueueTelemetry`].

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets; enough for any `u64` value.
pub const BUCKETS: usize = 64;

/// Bucket index for a value: bucket 0 counts zeros, bucket `i ≥ 1`
/// counts values in `[2^(i-1), 2^i)`, and the last bucket absorbs the
/// tail.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// A fixed-bucket power-of-two histogram with relaxed-atomic recording.
///
/// Used for capture-queue depth, chunk fill level and handoff batch
/// sizes. Recording is one relaxed `fetch_add` per sample (plus a
/// `fetch_max` for the running maximum) — no locks, no allocation.
#[derive(Debug)]
pub struct Log2Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    ///
    /// Single-writer semantics: each field is updated with a relaxed
    /// load + store rather than a read-modify-write, so recording costs
    /// plain `mov`s on x86. Histograms live in the capture thread's
    /// shard (`CaptureSide`), which has exactly one writer; concurrent
    /// snapshot readers stay safe because every store is still atomic.
    pub fn record(&self, v: u64) {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        self.count.store(load(&self.count) + 1, Ordering::Relaxed);
        self.sum.store(load(&self.sum) + v, Ordering::Relaxed);
        if v > load(&self.max) {
            self.max.store(v, Ordering::Relaxed);
        }
        let b = &self.buckets[bucket_index(v)];
        b.store(load(b) + 1, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes a serializable point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time copy of a [`Log2Histogram`].
///
/// `buckets[0]` counts zero samples; `buckets[i]` for `i ≥ 1` counts
/// samples in `[2^(i-1), 2^i)`. Trailing empty buckets are trimmed so
/// idle histograms serialize compactly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Per-bucket sample counts, trailing zeros trimmed.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper edge (exclusive) of the bucket containing the `q`-quantile
    /// sample, `q` in `[0, 1]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank.max(1) {
                return bucket_upper_edge(i);
            }
        }
        self.max
    }

    /// Folds another snapshot into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, &b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Bridge from the simulation's latency accumulator, so sim engines
/// expose `latency_ns` in the same schema the live engine records
/// natively. `LatencyStats` bucket `i` covers `[2^i, 2^(i+1))` ns,
/// which is [`HistogramSnapshot`] bucket `i + 1` (bucket 0 here counts
/// exact zeros, which `LatencyStats` clamps into its bucket 0).
impl From<&sim::stats::LatencyStats> for HistogramSnapshot {
    fn from(l: &sim::stats::LatencyStats) -> HistogramSnapshot {
        let mut buckets = vec![0u64];
        buckets.extend_from_slice(l.buckets());
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            count: l.count(),
            sum: l.sum_ns(),
            max: l.max_ns(),
            buckets,
        }
    }
}

/// Exclusive upper edge of bucket `i` (0 for the zero bucket).
pub fn bucket_upper_edge(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn record_and_snapshot() {
        let h = Log2Histogram::new();
        for v in [0u64, 1, 1, 3, 64] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 69);
        assert_eq!(s.max, 64);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[7], 1);
        assert_eq!(s.buckets.len(), 8, "trailing zeros trimmed");
        assert!((s.mean() - 13.8).abs() < 1e-9);
    }

    #[test]
    fn quantile_and_merge() {
        let h = Log2Histogram::new();
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let mut s = h.snapshot();
        assert_eq!(s.quantile(0.5), 2);
        assert_eq!(s.quantile(0.99), 1024);
        let other = s.clone();
        s.merge(&other);
        assert_eq!(s.count, 200);
        assert_eq!(s.buckets[1], 180);
    }

    #[test]
    fn latency_stats_bridge_shifts_buckets_by_one() {
        let mut l = sim::stats::LatencyStats::new();
        l.record(1); // LatencyStats bucket 0: [1, 2)
        l.record(1000); // LatencyStats bucket 9: [512, 1024)
        let s = HistogramSnapshot::from(&l);
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 1001);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 0, "no exact zeros");
        assert_eq!(s.buckets[1], 1, "[1, 2) lands in snapshot bucket 1");
        assert_eq!(s.buckets[10], 1, "[512, 1024) lands in snapshot bucket 10");
        // Same mapping a native Log2Histogram would produce.
        let h = Log2Histogram::new();
        h.record(1);
        h.record(1000);
        assert_eq!(h.snapshot().buckets, s.buckets);
    }

    #[test]
    fn empty_serializes_compactly() {
        let s = Log2Histogram::new().snapshot();
        assert!(s.is_empty());
        assert!(s.buckets.is_empty());
        assert_eq!(s.quantile(0.5), 0);
    }
}
