//! Property tests for the telemetry time series (proptest).
//!
//! The rate math feeds the anomaly detector, which triggers flight-
//! recorder dumps — a NaN or negative rate would either crash the
//! detector's comparisons or fire spurious dumps. These properties pin
//! the invariants under randomized sampling: arbitrary (including
//! zero-length and wildly non-uniform) intervals, arbitrary counter
//! movement including regressions, and ring wraparound.

use proptest::prelude::*;
use telemetry::timeseries::{rates_between, SeriesSample, TimeSeriesRing};

/// A randomized step between consecutive samples: how much time passed
/// and how far each counter moved (deltas of 0 are common and legal).
#[derive(Debug, Clone)]
struct Step {
    dt_ns: u64,
    captured: u64,
    delivered: u64,
    drops: u64,
    sealed: u64,
    offloaded: u64,
    queue_max: u64,
}

fn arb_step() -> impl Strategy<Value = Step> {
    (
        0u64..3_000_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..100_000,
        (0u64..10_000, 0u64..10_000),
        0u64..512,
    )
        .prop_map(
            |(dt_ns, captured, delivered, drops, (sealed, offloaded), queue_max)| Step {
                dt_ns,
                captured,
                delivered,
                drops,
                sealed,
                // A chunk must be sealed to be offloaded.
                offloaded: offloaded.min(sealed),
                queue_max,
            },
        )
}

/// Integrates steps into a monotonic sample sequence.
fn samples_from(steps: &[Step]) -> Vec<SeriesSample> {
    let mut out = Vec::with_capacity(steps.len() + 1);
    let mut s = SeriesSample::default();
    out.push(s);
    for st in steps {
        s.ts_ns += st.dt_ns;
        s.captured_packets += st.captured;
        s.delivered_packets += st.delivered;
        s.drop_packets += st.drops;
        s.sealed_chunks += st.sealed;
        s.offloaded_chunks += st.offloaded;
        s.capture_queue_max_len = st.queue_max;
        out.push(s);
    }
    out
}

proptest! {
    /// Every rate derived from any consecutive pair is finite and
    /// non-negative; ratio metrics stay in [0, 1]; a zero interval
    /// yields `None` rather than division by zero.
    #[test]
    fn rates_are_finite_nonnegative_and_bounded(
        steps in proptest::collection::vec(arb_step(), 1..60),
    ) {
        let samples = samples_from(&steps);
        for pair in samples.windows(2) {
            let rates = rates_between(&pair[0], &pair[1]);
            let dt = pair[1].ts_ns - pair[0].ts_ns;
            if dt == 0 {
                prop_assert!(rates.is_none(), "zero interval must yield None");
                continue;
            }
            let r = rates.expect("positive interval yields rates");
            prop_assert_eq!(r.dt_ns, dt);
            for v in [
                r.captured_pps,
                r.delivered_pps,
                r.drop_pps,
                r.sealed_cps,
                r.offload_cps,
            ] {
                prop_assert!(v.is_finite() && v >= 0.0, "rate {v} out of range");
            }
            prop_assert!((0.0..=1.0).contains(&r.drop_rate), "drop_rate {}", r.drop_rate);
            prop_assert!(
                (0.0..=1.0).contains(&r.offload_rate),
                "offload_rate {}",
                r.offload_rate
            );
            // Cross-check one rate against its definition.
            let captured = pair[1].captured_packets - pair[0].captured_packets;
            let expect = captured as f64 / (dt as f64 / 1e9);
            prop_assert!((r.captured_pps - expect).abs() <= expect.abs() * 1e-12 + 1e-9);
        }
    }

    /// Counter regressions (engine restart between samples) saturate to
    /// zero rates — never negative, never NaN.
    #[test]
    fn counter_regressions_never_go_negative(
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
        dt in 1u64..2_000_000_000,
    ) {
        let prev = SeriesSample { ts_ns: 0, captured_packets: a, drop_packets: a / 2, ..Default::default() };
        let next = SeriesSample { ts_ns: dt, captured_packets: b, drop_packets: b / 2, ..Default::default() };
        let r = rates_between(&prev, &next).expect("dt > 0");
        prop_assert!(r.captured_pps >= 0.0 && r.captured_pps.is_finite());
        prop_assert!(r.drop_pps >= 0.0 && r.drop_pps.is_finite());
        if b < a {
            prop_assert_eq!(r.captured_pps, 0.0, "regression saturates");
        }
    }

    /// Ring wraparound: after any push sequence the window is exactly
    /// the last `min(len, capacity)` samples in order, and the rates
    /// computed through the ring equal the rates computed directly on
    /// that window — wraparound never pairs samples across the seam.
    #[test]
    fn ring_window_and_rates_survive_wraparound(
        capacity in 2usize..12,
        steps in proptest::collection::vec(arb_step(), 1..80),
    ) {
        let samples = samples_from(&steps);
        let mut ring = TimeSeriesRing::with_capacity(capacity);
        for s in &samples {
            ring.push(*s);
        }
        let expected: Vec<SeriesSample> = samples
            .iter()
            .skip(samples.len().saturating_sub(capacity))
            .copied()
            .collect();
        prop_assert_eq!(ring.window(), expected.clone());
        prop_assert_eq!(ring.latest().copied(), expected.last().copied());
        let direct: Vec<_> = expected
            .windows(2)
            .filter_map(|p| rates_between(&p[0], &p[1]))
            .collect();
        prop_assert_eq!(ring.rates(), direct);
        let n = expected.len();
        prop_assert_eq!(
            ring.last_rates(),
            rates_between(&expected[n - 2], &expected[n - 1])
        );
    }
}
