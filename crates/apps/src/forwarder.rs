//! The middlebox application: inspect, modify, forward.
//!
//! "WireCAP implements a packet transmit function that allows captured
//! packets to be forwarded, potentially after the packets are modified or
//! inspected in flight. Therefore, WireCAP can be used to support
//! middlebox-type applications." (§1)
//!
//! The forwarder decrements the IPv4 TTL and patches the header checksum
//! incrementally (RFC 1624) — the canonical router-style in-flight
//! modification — then hands the frame onward.

use netproto::ethernet::{EtherType, EthernetFrame};
use netproto::Packet;
use std::net::Ipv4Addr;

/// Outcome of pushing one packet through the middlebox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forwarded after modification.
    Forwarded,
    /// TTL expired: dropped (a router would emit ICMP time-exceeded).
    TtlExpired,
    /// Not IPv4: forwarded untouched.
    PassedThrough,
}

/// A TTL-decrementing middlebox.
#[derive(Debug)]
pub struct Middlebox {
    /// Packets forwarded after modification.
    pub forwarded: u64,
    /// Packets dropped on TTL expiry.
    pub expired: u64,
    /// Non-IPv4 packets passed through unmodified.
    pub passed: u64,
    /// The router's own address, used as the source of ICMP errors.
    pub router_ip: Ipv4Addr,
    /// ICMP Time Exceeded messages generated.
    pub icmp_sent: u64,
}

impl Default for Middlebox {
    fn default() -> Self {
        Middlebox {
            forwarded: 0,
            expired: 0,
            passed: 0,
            router_ip: Ipv4Addr::new(192, 0, 2, 1),
            icmp_sent: 0,
        }
    }
}

impl Middlebox {
    /// Creates a middlebox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a middlebox with an explicit router address for ICMP
    /// error generation.
    pub fn with_router_ip(router_ip: Ipv4Addr) -> Self {
        Middlebox {
            router_ip,
            ..Self::default()
        }
    }

    /// RFC 792 Time Exceeded generation for a frame whose TTL expired —
    /// what a real router emits back toward the sender. Returns the
    /// complete response frame.
    pub fn time_exceeded_reply(&mut self, original_frame: &[u8]) -> Option<Packet> {
        let reply = netproto::icmp::build_time_exceeded(original_frame, self.router_ip).ok()?;
        self.icmp_sent += 1;
        Some(Packet::new(0, reply))
    }

    /// Processes one packet in place; returns the verdict and (for
    /// forwarded traffic) leaves the modified frame in `frame`.
    pub fn process(&mut self, frame: &mut [u8]) -> Verdict {
        let is_ipv4 = EthernetFrame::parse(frame)
            .map(|e| e.ethertype() == EtherType::Ipv4)
            .unwrap_or(false);
        if !is_ipv4 || frame.len() < 14 + 20 {
            self.passed += 1;
            return Verdict::PassedThrough;
        }
        let ttl_at = 14 + 8;
        let ttl = frame[ttl_at];
        if ttl <= 1 {
            self.expired += 1;
            return Verdict::TtlExpired;
        }
        frame[ttl_at] = ttl - 1;
        incremental_checksum_fix(frame, ttl);
        self.forwarded += 1;
        Verdict::Forwarded
    }

    /// Processes a borrowed frame into a caller-provided scratch buffer:
    /// `scratch` is overwritten with the frame and modified in place, so
    /// chunk-view consumers reuse one buffer for the whole stream instead
    /// of allocating per packet. On [`Verdict::Forwarded`] (or
    /// [`Verdict::PassedThrough`]) `scratch` holds the frame to transmit.
    pub fn process_slice(&mut self, frame: &[u8], scratch: &mut Vec<u8>) -> Verdict {
        scratch.clear();
        scratch.extend_from_slice(frame);
        self.process(scratch)
    }

    /// Convenience wrapper for owned packets: returns the modified copy
    /// when forwarded.
    pub fn process_packet(&mut self, pkt: &Packet) -> (Verdict, Option<Packet>) {
        let mut bytes = pkt.data.to_vec();
        let verdict = self.process(&mut bytes);
        match verdict {
            Verdict::TtlExpired => (verdict, None),
            _ => (
                verdict,
                Some(Packet {
                    ts_ns: pkt.ts_ns,
                    wire_len: pkt.wire_len,
                    data: bytes.into(),
                }),
            ),
        }
    }
}

/// RFC 1624 incremental update for a TTL decrement: the TTL shares a
/// 16-bit word with the protocol field at header offset 8.
fn incremental_checksum_fix(frame: &mut [u8], old_ttl: u8) {
    let csum_at = 14 + 10;
    let old_word = u16::from_be_bytes([old_ttl, frame[14 + 9]]);
    let new_word = u16::from_be_bytes([old_ttl - 1, frame[14 + 9]]);
    let old_csum = u16::from_be_bytes([frame[csum_at], frame[csum_at + 1]]);
    // HC' = ~(~HC + ~m + m')   (RFC 1624 eqn. 3)
    let mut sum = u32::from(!old_csum) + u32::from(!old_word) + u32::from(new_word);
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    let new_csum = !(sum as u16);
    frame[csum_at..csum_at + 2].copy_from_slice(&new_csum.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use netproto::ipv4::Ipv4Header;
    use netproto::{FlowKey, PacketBuilder};

    fn frame() -> Vec<u8> {
        PacketBuilder::new()
            .build(
                &FlowKey::udp(
                    "131.225.2.1".parse().unwrap(),
                    53,
                    "8.8.8.8".parse().unwrap(),
                    53,
                ),
                100,
            )
            .unwrap()
    }

    #[test]
    fn forwarding_decrements_ttl_and_keeps_checksum_valid() {
        let mut mb = Middlebox::new();
        let mut f = frame();
        let before = Ipv4Header::parse(&f[14..]).unwrap().ttl();
        assert_eq!(mb.process(&mut f), Verdict::Forwarded);
        let ip = Ipv4Header::parse(&f[14..]).unwrap();
        assert_eq!(ip.ttl(), before - 1);
        assert!(
            ip.checksum_ok(),
            "incremental checksum update broke the header"
        );
        assert_eq!(mb.forwarded, 1);
    }

    #[test]
    fn repeated_hops_stay_valid_until_expiry() {
        let mut mb = Middlebox::new();
        let mut f = frame();
        for _ in 0..63 {
            assert_eq!(mb.process(&mut f), Verdict::Forwarded);
            assert!(Ipv4Header::parse(&f[14..]).unwrap().checksum_ok());
        }
        assert_eq!(Ipv4Header::parse(&f[14..]).unwrap().ttl(), 1);
        assert_eq!(mb.process(&mut f), Verdict::TtlExpired);
        assert_eq!(mb.expired, 1);
    }

    #[test]
    fn ttl_expiry_can_answer_with_icmp() {
        let mut mb = Middlebox::with_router_ip("203.0.113.1".parse().unwrap());
        let mut f = frame();
        f[14 + 8] = 1; // TTL 1: next hop would be 0
                       // refresh the header checksum for the modified TTL
        f[14 + 10] = 0;
        f[14 + 11] = 0;
        let csum = netproto::checksum::checksum(&f[14..34]);
        f[24..26].copy_from_slice(&csum.to_be_bytes());

        assert_eq!(mb.process(&mut f), Verdict::TtlExpired);
        let reply = mb.time_exceeded_reply(&f).expect("ICMP reply");
        netproto::builder::validate_frame(&reply.data).unwrap();
        let ip = Ipv4Header::parse(&reply.data[14..]).unwrap();
        assert_eq!(ip.protocol(), 1);
        // Back toward the original source.
        assert_eq!(
            ip.dst(),
            "131.225.2.1".parse::<std::net::Ipv4Addr>().unwrap()
        );
        assert_eq!(mb.icmp_sent, 1);
    }

    #[test]
    fn non_ip_passes_through() {
        let mut mb = Middlebox::new();
        let mut arp = vec![0u8; 60];
        arp[12] = 0x08;
        arp[13] = 0x06;
        let orig = arp.clone();
        assert_eq!(mb.process(&mut arp), Verdict::PassedThrough);
        assert_eq!(arp, orig);
    }

    #[test]
    fn process_slice_reuses_the_scratch_buffer() {
        let mut mb = Middlebox::new();
        let f = frame();
        let mut scratch = Vec::new();
        assert_eq!(mb.process_slice(&f, &mut scratch), Verdict::Forwarded);
        let ip = Ipv4Header::parse(&scratch[14..]).unwrap();
        assert!(ip.checksum_ok());
        let cap = scratch.capacity();
        // A second, equally sized frame reuses the allocation.
        assert_eq!(mb.process_slice(&f, &mut scratch), Verdict::Forwarded);
        assert_eq!(scratch.capacity(), cap);
        assert_eq!(mb.forwarded, 2);
    }

    #[test]
    fn process_packet_returns_modified_copy() {
        let mut mb = Middlebox::new();
        let pkt = Packet::new(7, frame());
        let (v, out) = mb.process_packet(&pkt);
        assert_eq!(v, Verdict::Forwarded);
        let out = out.unwrap();
        assert_ne!(out.data, pkt.data);
        assert_eq!(out.ts_ns, 7);
    }
}
