//! `pkt_handler` — the paper's packet-processing application.
//!
//! "It captures and processes packets from a specific queue and executes
//! a repeating while loop. In each loop, a packet is captured and applied
//! with a Berkeley Packet Filter (BPF) x times before being discarded.
//! By varying x, we simulate different packet-processing rates of real
//! applications … the BPF filter '131.225.2 and UDP' is used, and x is
//! set to 0 and 300." (§2.2)
//!
//! This is the *real* workload: the filter is compiled by the `bpf` crate
//! and executed x times per packet on the VM. The drop-rate simulations
//! reduce it to the calibrated service rate; the live mode and the
//! Criterion benches run it for real.

use bpf::Filter;
use netproto::Packet;

/// The filter expression the paper uses.
pub const PAPER_FILTER: &str = "131.225.2 and UDP";

/// A `pkt_handler` instance: filter × x per packet.
#[derive(Debug, Clone)]
pub struct PktHandler {
    filter: Filter,
    x: u32,
    processed: u64,
    matched_last: bool,
}

impl PktHandler {
    /// Creates a handler applying `expr` x times per packet.
    pub fn new(expr: &str, x: u32) -> Result<Self, bpf::Error> {
        Ok(PktHandler {
            filter: Filter::compile(expr)?,
            x,
            processed: 0,
            matched_last: false,
        })
    }

    /// The paper's configuration: `131.225.2 and UDP` with the given x.
    pub fn paper(x: u32) -> Self {
        Self::new(PAPER_FILTER, x).expect("the paper's filter compiles")
    }

    /// Processes one packet: applies the BPF filter x times, then
    /// discards it. Returns the final filter verdict.
    pub fn handle(&mut self, pkt: &Packet) -> bool {
        self.handle_bytes(&pkt.data)
    }

    /// Processes one raw frame — the zero-copy entry point for consumers
    /// holding borrowed `&[u8]` slices (arena chunk views) rather than
    /// owned packets.
    pub fn handle_bytes(&mut self, frame: &[u8]) -> bool {
        let mut verdict = false;
        for _ in 0..self.x.max(1) {
            verdict = self.filter.matches(frame);
        }
        self.processed += 1;
        self.matched_last = verdict;
        verdict
    }

    /// Packets processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The x parameter.
    pub fn x(&self) -> u32 {
        self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netproto::{FlowKey, PacketBuilder};

    fn pkt(src: &str, udp: bool) -> Packet {
        let flow = if udp {
            FlowKey::udp(src.parse().unwrap(), 53, "8.8.8.8".parse().unwrap(), 53)
        } else {
            FlowKey::tcp(src.parse().unwrap(), 53, "8.8.8.8".parse().unwrap(), 53)
        };
        PacketBuilder::new().build_packet(0, &flow, 64).unwrap()
    }

    #[test]
    fn paper_filter_verdicts() {
        let mut h = PktHandler::paper(300);
        assert!(h.handle(&pkt("131.225.2.77", true)));
        assert!(!h.handle(&pkt("131.225.2.77", false))); // TCP
        assert!(!h.handle(&pkt("131.226.2.77", true))); // wrong net
        assert_eq!(h.processed(), 3);
    }

    #[test]
    fn x_zero_still_filters_once() {
        let mut h = PktHandler::paper(0);
        assert!(h.handle(&pkt("131.225.2.1", true)));
        assert_eq!(h.x(), 0);
    }

    #[test]
    fn custom_filter() {
        let mut h = PktHandler::new("tcp and dst port 53", 5).unwrap();
        assert!(!h.handle(&pkt("1.2.3.4", true)));
        assert!(h.handle(&pkt("1.2.3.4", false)));
    }

    #[test]
    fn bad_filter_is_an_error() {
        assert!(PktHandler::new("frobnicate", 1).is_err());
    }
}
