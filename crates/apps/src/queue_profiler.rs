//! `queue_profiler` — the paper's load-imbalance measurement tool.
//!
//! "The first tool is called queue_profiler. It is a single-threaded
//! application that captures packets from a specific receive queue and
//! counts the number of packets captured every 10 ms." (§2.2)
//!
//! Profiling all queues of a workload reproduces Fig. 3: the per-queue
//! 10 ms time series that exhibits both short-term bursts and long-term
//! skew under per-flow RSS steering.

use nicsim::rss::Rss;
use sim::{SimTime, TimeSeries};
use traffic::TrafficSource;

/// Per-queue 10 ms-binned packet counts for one workload.
#[derive(Debug)]
pub struct QueueProfiler {
    series: Vec<TimeSeries>,
}

impl QueueProfiler {
    /// Profiles `source` steered by RSS across `queues` receive queues
    /// (the paper runs this with a lossless engine, so the profile equals
    /// the offered load).
    pub fn profile(source: &mut dyn TrafficSource, queues: usize) -> Self {
        let rss = Rss::new(queues);
        let steering: Vec<usize> = source.flows().iter().map(|f| rss.steer(f)).collect();
        let mut series: Vec<TimeSeries> = (0..queues)
            .map(|_| TimeSeries::profiler_default())
            .collect();
        while let Some(a) = source.next_arrival() {
            series[steering[a.flow as usize]].record(SimTime(a.ts_ns));
        }
        QueueProfiler { series }
    }

    /// The 10 ms series for one queue.
    pub fn queue(&self, q: usize) -> &TimeSeries {
        &self.series[q]
    }

    /// Number of queues profiled.
    pub fn queues(&self) -> usize {
        self.series.len()
    }

    /// Total packets each queue received.
    pub fn totals(&self) -> Vec<u64> {
        self.series.iter().map(TimeSeries::total).collect()
    }

    /// Long-term imbalance ratio: busiest queue over quietest (by total
    /// packets; quietest clamped to ≥ 1 packet).
    pub fn imbalance_ratio(&self) -> f64 {
        let totals = self.totals();
        let max = totals.iter().copied().max().unwrap_or(0);
        let min = totals.iter().copied().min().unwrap_or(0).max(1);
        max as f64 / min as f64
    }

    /// The busiest and quietest queue indices (the paper reports queues
    /// 0 and 3 of its six).
    pub fn extremes(&self) -> (usize, usize) {
        let totals = self.totals();
        let busiest = (0..totals.len()).max_by_key(|&q| totals[q]).unwrap_or(0);
        let quietest = (0..totals.len()).min_by_key(|&q| totals[q]).unwrap_or(0);
        (busiest, quietest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::{generate_border_trace, BorderTraceConfig, TraceCursor};

    #[test]
    fn profile_reproduces_fig3_phenomena() {
        let trace = generate_border_trace(&BorderTraceConfig::small());
        let mut cursor = TraceCursor::new(&trace);
        let prof = QueueProfiler::profile(&mut cursor, 6);
        assert_eq!(prof.queues(), 6);
        assert_eq!(prof.totals().iter().sum::<u64>(), trace.len() as u64);

        // Long-term imbalance: some queue carries several times another's
        // load (the paper's queue 0 vs queue 3).
        assert!(
            prof.imbalance_ratio() > 2.0,
            "imbalance = {}",
            prof.imbalance_ratio()
        );

        // Short-term bursts: the busiest queue's peak 10 ms bin is far
        // above its mean.
        let (busiest, quietest) = prof.extremes();
        assert_ne!(busiest, quietest);
        assert!(prof.queue(busiest).burstiness() > 3.0);
    }

    #[test]
    fn single_queue_gets_everything() {
        let trace = generate_border_trace(&BorderTraceConfig {
            packets: 2_000,
            flows: 50,
            ..BorderTraceConfig::small()
        });
        let mut cursor = TraceCursor::new(&trace);
        let prof = QueueProfiler::profile(&mut cursor, 1);
        assert_eq!(prof.totals(), vec![2_000]);
        assert_eq!(prof.imbalance_ratio(), 1.0);
    }
}
