//! The experiment harness: workload → RSS → engine → drop rates.

use engines::{
    CaptureEngine, DpdkEngine, EngineConfig, PfPacketEngine, PfRingEngine, PsioeEngine,
    Type2Engine, Type2Kind,
};
use nicsim::rss::Rss;
use serde::{Deserialize, Serialize};
use sim::stats::CopyMeter;
use sim::{DropStats, SimTime};
use std::sync::{Arc, Mutex};
use telemetry::{EngineSnapshot, Observable, PipelineConfig, TelemetryPipeline};
use traffic::TrafficSource;
use wirecap::{WireCapConfig, WireCapEngine};

/// Which engine to instantiate for an experiment.
#[derive(Debug, Clone, Copy)]
pub enum EngineKind {
    /// ntop DNA (Type II).
    Dna,
    /// netmap (Type II).
    Netmap,
    /// PF_RING mode 2 (Type I).
    PfRing,
    /// Stock kernel raw sockets.
    PfPacket,
    /// PacketShader I/O engine.
    Psioe,
    /// Intel DPDK (deep user-space mempools, no offloading) — §6.
    Dpdk,
    /// DPDK with application-layer offloading at the given threshold —
    /// the paper's §7 future-work comparison.
    DpdkAppOffload(f64),
    /// WireCAP with the given configuration (basic or advanced mode).
    WireCap(WireCapConfig),
}

impl EngineKind {
    /// Builds the engine over `queues` receive queues.
    pub fn build(&self, queues: usize, cfg: EngineConfig) -> Box<dyn CaptureEngine> {
        match *self {
            EngineKind::Dna => Box::new(Type2Engine::new(Type2Kind::Dna, queues, cfg)),
            EngineKind::Netmap => Box::new(Type2Engine::new(Type2Kind::Netmap, queues, cfg)),
            EngineKind::PfRing => Box::new(PfRingEngine::new(queues, cfg)),
            EngineKind::PfPacket => Box::new(PfPacketEngine::new(queues, cfg)),
            EngineKind::Psioe => Box::new(PsioeEngine::new(queues, cfg)),
            EngineKind::Dpdk => Box::new(DpdkEngine::new(queues, cfg)),
            EngineKind::DpdkAppOffload(t) => Box::new(DpdkEngine::with_app_offload(queues, cfg, t)),
            EngineKind::WireCap(mut wc) => {
                wc.app = cfg.app;
                wc.ring_size = cfg.ring_size;
                Box::new(WireCapEngine::new(queues, wc))
            }
        }
    }

    /// Display name (matches the paper's legends).
    pub fn name(&self) -> String {
        match self {
            EngineKind::Dna => "DNA".into(),
            EngineKind::Netmap => "NETMAP".into(),
            EngineKind::PfRing => "PF_RING".into(),
            EngineKind::PfPacket => "PF_PACKET".into(),
            EngineKind::Psioe => "PSIOE".into(),
            EngineKind::Dpdk => "DPDK".into(),
            EngineKind::DpdkAppOffload(t) => format!("DPDK+app-offload({:.0}%)", t * 100.0),
            EngineKind::WireCap(wc) => wc.name(),
        }
    }
}

/// Everything an experiment run measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Engine display name.
    pub engine: String,
    /// Per-queue accounting.
    pub per_queue: Vec<DropStats>,
    /// Aggregate accounting.
    pub total: DropStats,
    /// Packet-byte copies on the capture path.
    pub copies: CopyMeter,
    /// Capture-to-delivery latency samples (engines that meter them).
    pub latency: sim::stats::LatencyStats,
    /// Simulated time at which the engine drained, seconds.
    pub drained_at_s: f64,
    /// Full unified telemetry snapshot (per-queue counters, gauges and
    /// histograms in the schema every engine shares).
    pub telemetry: EngineSnapshot,
}

impl ExperimentResult {
    /// Overall drop rate — the paper's headline metric.
    pub fn drop_rate(&self) -> f64 {
        self.total.overall_drop_rate()
    }
}

/// Arrivals pulled from the traffic source per batch.
const ARRIVAL_BATCH: usize = 256;

/// A published snapshot cell: the simulation loop refreshes it at
/// wall-clock intervals and the telemetry pipeline (sampler + scrape
/// endpoint) reads it from its own threads. Simulated engines are
/// single-threaded, so this is how their state becomes observable live
/// — the live engine's counters are shared directly instead.
struct SnapshotCell(Mutex<EngineSnapshot>);

impl Observable for SnapshotCell {
    fn snapshot(&self) -> EngineSnapshot {
        self.0.lock().expect("snapshot cell poisoned").clone()
    }
}

/// Telemetry attachment for one harness run, driven by the same env
/// contract the live engine uses (`WIRECAP_TELEMETRY_LISTEN`,
/// `WIRECAP_TELEMETRY_SAMPLE_MS`, `WIRECAP_TELEMETRY_FLIGHT_DIR`).
struct HarnessTelemetry {
    cell: Arc<SnapshotCell>,
    pipeline: TelemetryPipeline,
    refreshed: std::time::Instant,
}

impl HarnessTelemetry {
    /// Publish interval for the snapshot cell; finer granularity would
    /// only burn simulation throughput on clones nobody samples.
    const REFRESH: std::time::Duration = std::time::Duration::from_millis(10);

    fn start_from_env(engine: &dyn CaptureEngine) -> Option<Self> {
        let cfg = PipelineConfig::from_env();
        if cfg.is_inert() {
            return None;
        }
        let cell = Arc::new(SnapshotCell(Mutex::new(engine.snapshot())));
        let pipeline = TelemetryPipeline::start(
            &engine.name(),
            Arc::clone(&cell) as Arc<dyn Observable>,
            cfg,
        )?;
        Some(HarnessTelemetry {
            cell,
            pipeline,
            refreshed: std::time::Instant::now(),
        })
    }

    /// Refreshes the published snapshot, rate-limited to [`Self::REFRESH`].
    fn maybe_refresh(&mut self, engine: &dyn CaptureEngine) {
        if self.refreshed.elapsed() >= Self::REFRESH {
            self.publish(engine.snapshot());
        }
    }

    fn publish(&mut self, snap: EngineSnapshot) {
        *self.cell.0.lock().expect("snapshot cell poisoned") = snap;
        self.refreshed = std::time::Instant::now();
    }

    fn finish(mut self, snap: EngineSnapshot) {
        self.publish(snap);
        self.pipeline.stop();
    }
}

/// Runs a workload through RSS steering into an engine and returns the
/// measurements. Arrival timestamps must be non-decreasing.
pub fn run_experiment(
    engine: &mut dyn CaptureEngine,
    source: &mut dyn TrafficSource,
) -> ExperimentResult {
    let queues = engine.queues();
    let rss = Rss::new(queues);
    // Per-flow steering decisions are cached: the hash depends only on
    // the 5-tuple (this is exactly why RSS skews — every packet of a
    // flow lands on the same queue).
    let steering: Vec<usize> = source.flows().iter().map(|f| rss.steer(f)).collect();

    // Live observability rides along when the telemetry env asks for it
    // (scrape endpoint + sampler over a periodically published snapshot).
    let mut live_view = HarnessTelemetry::start_from_env(engine);

    // Arrivals are pulled in batches (sources backed by contiguous
    // records emit whole slices per call) and fed to the engine.
    let mut last = SimTime::ZERO;
    let mut debug_prev = 0u64;
    let mut batch: Vec<traffic::Arrival> = Vec::with_capacity(ARRIVAL_BATCH);
    loop {
        batch.clear();
        if source.next_batch(&mut batch, ARRIVAL_BATCH) == 0 {
            break;
        }
        for a in &batch {
            debug_assert!(a.ts_ns >= debug_prev, "arrivals must be time-ordered");
            debug_prev = a.ts_ns;
            last = SimTime(a.ts_ns);
            engine.on_arrival(last, steering[a.flow as usize], a.len);
        }
        if let Some(view) = live_view.as_mut() {
            view.maybe_refresh(engine);
        }
    }
    let drained = engine.finish(last);

    let snapshot = engine.snapshot();
    if let Some(view) = live_view.take() {
        view.finish(snapshot.clone());
    }
    // `scripts/`-friendly dump hook: when WIRECAP_TELEMETRY_DUMP is
    // set, every harness run (figure binaries included) writes the
    // unified snapshot at completion, same as the live engine does at
    // shutdown.
    telemetry::dump::dump_snapshot(&snapshot);
    let per_queue: Vec<DropStats> = snapshot.queues.iter().map(DropStats::from).collect();
    let mut total = DropStats::default();
    for s in &per_queue {
        debug_assert!(s.is_consistent(), "inconsistent stats: {s:?}");
        total.merge(s);
    }
    ExperimentResult {
        engine: engine.name(),
        per_queue,
        total,
        copies: snapshot.copies,
        latency: snapshot.latency.clone(),
        drained_at_s: drained.as_secs_f64(),
        telemetry: snapshot,
    }
}

/// Convenience: build an engine, run the workload, return the result.
pub fn run(
    kind: EngineKind,
    queues: usize,
    cfg: EngineConfig,
    source: &mut dyn TrafficSource,
) -> ExperimentResult {
    let mut engine = kind.build(queues, cfg);
    run_experiment(engine.as_mut(), source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::WireRateGen;

    #[test]
    fn wirecap_vs_dna_on_the_paper_burst() {
        // Fig. 9's qualitative claim at P = 20 000 with x = 300: DNA
        // drops most of the burst, WireCAP-B-(256,100) none of it.
        let cfg = EngineConfig::paper(300);
        let mut g = WireRateGen::paper_burst(20_000);
        let dna = run(EngineKind::Dna, 1, cfg, &mut g);
        let mut g = WireRateGen::paper_burst(20_000);
        let wc = run(
            EngineKind::WireCap(WireCapConfig::basic(256, 100, 300)),
            1,
            cfg,
            &mut g,
        );
        assert!(dna.drop_rate() > 0.8, "dna = {}", dna.drop_rate());
        assert_eq!(wc.total.capture_drops, 0, "wirecap = {:?}", wc.total);
        // The only copies are the timeout-delivered trailing partial
        // chunk (20 000 mod 256 = 32 packets).
        assert!(wc.copies.packets < 256, "copies = {:?}", wc.copies);
    }

    #[test]
    fn engine_names_round_trip() {
        assert_eq!(EngineKind::Dna.name(), "DNA");
        assert_eq!(
            EngineKind::WireCap(WireCapConfig::advanced(256, 100, 0.6, 300)).name(),
            "WireCAP-A-(256, 100, 60%)"
        );
    }

    #[test]
    fn multi_queue_steering_spreads_flows() {
        let cfg = EngineConfig::paper(0);
        let mut g = WireRateGen::new(10_000, 64, 1e6, 64);
        let res = run(EngineKind::Dna, 4, cfg, &mut g);
        let active = res.per_queue.iter().filter(|q| q.offered > 0).count();
        assert!(active >= 3, "only {active} queues saw traffic");
        assert_eq!(res.total.offered, 10_000);
        assert_eq!(res.drop_rate(), 0.0);
    }

    #[test]
    fn result_serializes() {
        let cfg = EngineConfig::paper(0);
        let mut g = WireRateGen::paper_burst(1_000);
        let res = run(EngineKind::Netmap, 1, cfg, &mut g);
        let json = serde_json::to_string(&res).unwrap();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total, res.total);
    }
}
