//! Timestamp-accuracy study (§5c).
//!
//! "Applying \[batch processing\] may entail side effects, such as latency
//! increases and inaccurate time-stamping. … The OS jiffy resolution is
//! on the order of milliseconds, which cannot provide accurate timestamp
//! support in high-speed networks. CPU time stamp counter (TSC) can
//! provide finer resolution. However, the overheads will be too high if
//! TSC is accessed on a per-packet basis … almost all software-based
//! packet capture engines suffer the timestamp accuracy problem and the
//! uniqueness of timestamp problem."
//!
//! This module turns that discussion into a measurement: given a true
//! arrival timeline, each [`TimestampSource`] model produces the stamps
//! an engine would actually assign, and [`evaluate`] reports the error
//! and uniqueness statistics plus the stamping CPU cost — the
//! accuracy/overhead tradeoff the paper describes, quantified.

use serde::Serialize;
use sim::CpuModel;

/// How the capture path timestamps packets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimestampSource {
    /// The OS software clock: stamps quantized to the jiffy. "The OS
    /// jiffy resolution is on the order of milliseconds."
    OsJiffy {
        /// Jiffy length in nanoseconds (4 ms at HZ=250, 1 ms at HZ=1000).
        resolution_ns: u64,
    },
    /// One TSC read per packet: exact stamps, maximal overhead.
    PerPacketTsc {
        /// Cycles per TSC read + conversion (~25 cycles for `rdtsc`
        /// itself plus serialization and scaling).
        cost_cycles: f64,
    },
    /// One TSC read per delivered batch (chunk): every packet in the
    /// batch shares the stamp taken when the batch reaches user space —
    /// WireCAP-style chunk delivery, and what batching engines actually
    /// do.
    BatchTsc {
        /// Packets per batch (WireCAP's M).
        batch: usize,
        /// Cycles per TSC read.
        cost_cycles: f64,
    },
}

impl TimestampSource {
    /// Display name for reports.
    pub fn name(&self) -> String {
        match self {
            TimestampSource::OsJiffy { resolution_ns } => {
                format!("OS jiffy ({} ms)", *resolution_ns as f64 / 1e6)
            }
            TimestampSource::PerPacketTsc { .. } => "per-packet TSC".into(),
            TimestampSource::BatchTsc { batch, .. } => format!("TSC per batch of {batch}"),
        }
    }

    /// Stamps a true arrival timeline; returns the assigned stamps.
    pub fn stamp(&self, arrivals_ns: &[u64]) -> Vec<u64> {
        match *self {
            TimestampSource::OsJiffy { resolution_ns } => arrivals_ns
                .iter()
                .map(|&t| (t / resolution_ns) * resolution_ns)
                .collect(),
            TimestampSource::PerPacketTsc { .. } => arrivals_ns.to_vec(),
            TimestampSource::BatchTsc { batch, .. } => {
                let mut out = Vec::with_capacity(arrivals_ns.len());
                for chunk in arrivals_ns.chunks(batch.max(1)) {
                    // The batch is stamped when it is delivered: at the
                    // arrival of its last packet.
                    let stamp = *chunk.last().expect("chunks are non-empty");
                    out.extend(std::iter::repeat_n(stamp, chunk.len()));
                }
                out
            }
        }
    }

    /// CPU cycles the stamping itself costs, per packet.
    pub fn cycles_per_packet(&self) -> f64 {
        match *self {
            TimestampSource::OsJiffy { .. } => 2.0, // a cached variable read
            TimestampSource::PerPacketTsc { cost_cycles } => cost_cycles,
            TimestampSource::BatchTsc { batch, cost_cycles } => cost_cycles / batch.max(1) as f64,
        }
    }
}

/// Results of evaluating one timestamp source over a timeline.
#[derive(Debug, Clone, Serialize)]
pub struct StampReport {
    /// Source display name.
    pub source: String,
    /// Mean absolute stamp error in nanoseconds.
    pub mean_error_ns: f64,
    /// Maximum absolute stamp error in nanoseconds.
    pub max_error_ns: u64,
    /// Fraction of packets sharing a stamp with the *previous* packet —
    /// the paper's "uniqueness of timestamp problem".
    pub duplicate_fraction: f64,
    /// Fraction of adjacent packet pairs whose stamped order disagrees
    /// with (is coarser than) their true inter-arrival ordering.
    pub order_loss_fraction: f64,
    /// Stamping overhead as a fraction of one 2.4 GHz core at the
    /// observed packet rate.
    pub cpu_share_at_rate: f64,
}

/// Evaluates a timestamp source against a true arrival timeline.
pub fn evaluate(source: TimestampSource, arrivals_ns: &[u64]) -> StampReport {
    assert!(!arrivals_ns.is_empty());
    let stamps = source.stamp(arrivals_ns);
    let mut sum_err = 0u128;
    let mut max_err = 0u64;
    let mut dups = 0u64;
    let mut order_loss = 0u64;
    for i in 0..arrivals_ns.len() {
        let err = stamps[i].abs_diff(arrivals_ns[i]);
        sum_err += u128::from(err);
        max_err = max_err.max(err);
        if i > 0 {
            if stamps[i] == stamps[i - 1] {
                dups += 1;
            }
            // True strictly-increasing arrivals whose stamps tie or invert.
            if arrivals_ns[i] > arrivals_ns[i - 1] && stamps[i] <= stamps[i - 1] {
                order_loss += 1;
            }
        }
    }
    let n = arrivals_ns.len() as f64;
    let pairs = (arrivals_ns.len() as u64 - 1).max(1) as f64;
    let duration_s =
        (arrivals_ns.last().unwrap() - arrivals_ns.first().unwrap()).max(1) as f64 / 1e9;
    let rate_pps = n / duration_s;
    let cpu = CpuModel::default();
    StampReport {
        source: source.name(),
        mean_error_ns: sum_err as f64 / n,
        max_error_ns: max_err,
        duplicate_fraction: dups as f64 / pairs,
        order_loss_fraction: order_loss as f64 / pairs,
        cpu_share_at_rate: rate_pps * source.cycles_per_packet() / (cpu.freq_ghz * 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire_rate_timeline(n: u64) -> Vec<u64> {
        (0..n).map(|i| i * 67).collect() // ~14.9 Mp/s
    }

    #[test]
    fn per_packet_tsc_is_exact_but_costly() {
        let t = wire_rate_timeline(10_000);
        let r = evaluate(TimestampSource::PerPacketTsc { cost_cycles: 60.0 }, &t);
        assert_eq!(r.mean_error_ns, 0.0);
        assert_eq!(r.max_error_ns, 0);
        assert_eq!(r.duplicate_fraction, 0.0);
        // 14.9 Mp/s × 60 cycles ≈ 37 % of a 2.4 GHz core — the paper's
        // "overheads will be too high … on a per-packet basis".
        assert!(r.cpu_share_at_rate > 0.3, "{}", r.cpu_share_at_rate);
    }

    #[test]
    fn jiffy_clock_is_cheap_but_useless_at_wire_rate() {
        let t = wire_rate_timeline(10_000);
        let r = evaluate(
            TimestampSource::OsJiffy {
                resolution_ns: 1_000_000,
            },
            &t,
        );
        assert!(r.cpu_share_at_rate < 0.02); // ~2 cycles/pkt
                                             // Nearly every stamp collides within a 1 ms jiffy at 14.9 Mp/s.
        assert!(r.duplicate_fraction > 0.99, "{}", r.duplicate_fraction);
        assert!(r.max_error_ns < 1_000_000);
    }

    #[test]
    fn batch_tsc_trades_error_for_overhead() {
        let t = wire_rate_timeline(10_000);
        let small = evaluate(
            TimestampSource::BatchTsc {
                batch: 64,
                cost_cycles: 60.0,
            },
            &t,
        );
        let big = evaluate(
            TimestampSource::BatchTsc {
                batch: 256,
                cost_cycles: 60.0,
            },
            &t,
        );
        // Bigger batches: cheaper but less accurate and less unique.
        assert!(big.cpu_share_at_rate < small.cpu_share_at_rate);
        assert!(big.mean_error_ns > small.mean_error_ns);
        assert!(big.duplicate_fraction > small.duplicate_fraction);
        // Error is bounded by the batch fill time.
        assert!(small.max_error_ns <= 64 * 67);
        assert!(big.max_error_ns <= 256 * 67);
    }

    #[test]
    fn stamps_never_reorder_but_can_tie() {
        let t = wire_rate_timeline(1_000);
        for src in [
            TimestampSource::OsJiffy {
                resolution_ns: 4_000_000,
            },
            TimestampSource::BatchTsc {
                batch: 128,
                cost_cycles: 60.0,
            },
        ] {
            let stamps = src.stamp(&t);
            assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "{src:?}");
            let r = evaluate(src, &t);
            assert_eq!(r.duplicate_fraction, r.order_loss_fraction);
        }
    }
}
