//! # apps — the paper's experiment tools and harness
//!
//! §2.2 of the paper introduces its experiment tools; this crate
//! implements each of them plus the machinery that turns a workload and
//! an engine into a drop-rate measurement:
//!
//! * [`queue_profiler`] — "a single-threaded application that captures
//!   packets from a specific receive queue and counts the number of
//!   packets captured every 10 ms" (Fig. 3);
//! * [`pkt_handler`] — "captures and processes packets from a specific
//!   queue … a packet is captured and applied with a Berkeley Packet
//!   Filter x times before being discarded", with the real BPF VM doing
//!   the work in live mode;
//! * [`multi_pkt_handler`] — the multi-threaded variant driving the live
//!   WireCAP engine (§4);
//! * [`forwarder`] — the middlebox application of the forwarding
//!   experiments: inspect, modify (TTL decrement + incremental checksum
//!   fix), forward;
//! * [`harness`] — steers a [`traffic::TrafficSource`] through the NIC's
//!   RSS stage into any [`engines::CaptureEngine`] and collects the
//!   paper's metrics ([`harness::ExperimentResult`]);
//! * [`save`] — `capture_and_save`: the capture-to-disk harness over
//!   the live engine, with the graceful-degradation disk sink;
//! * [`timestamping`] — the §5c timestamp-accuracy/overhead study
//!   (OS jiffy vs. per-packet TSC vs. batched TSC).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod forwarder;
pub mod harness;
pub mod multi_pkt_handler;
pub mod pkt_handler;
pub mod queue_profiler;
pub mod save;
pub mod timestamping;

pub use harness::{run_experiment, EngineKind, ExperimentResult};
pub use pkt_handler::PktHandler;
pub use queue_profiler::QueueProfiler;
pub use save::SaveOutcome;
