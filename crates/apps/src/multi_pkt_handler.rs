//! `multi_pkt_handler` — the multi-threaded experiment application.
//!
//! "It is a multi-threaded version of pkt_handler, called
//! multi_pkt_handler, which can spawn one or multiple pkt_handler threads
//! that share the same address space." (§4)
//!
//! This is the live-mode driver: one `pkt_handler` thread per receive
//! queue, consuming chunks from the live WireCAP engine. Because all
//! threads belong to one process, the engine forms one buddy group over
//! all queues — the advanced-mode setup of §4.
//!
//! The engine it starts honors the live-telemetry environment
//! (`WIRECAP_TELEMETRY_LISTEN`, `WIRECAP_TELEMETRY_SAMPLE_MS`,
//! `WIRECAP_TELEMETRY_FLIGHT_DIR` — DESIGN.md §4.9), so any run of
//! this driver can be scraped while it processes.

use crate::pkt_handler::PktHandler;
use nicsim::livenic::LiveNic;
use std::sync::Arc;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::WireCapConfig;

/// Results from one pkt_handler thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandlerReport {
    /// Queue the thread consumed from.
    pub queue: usize,
    /// Packets processed.
    pub processed: u64,
    /// Packets that matched the filter.
    pub matched: u64,
}

/// Runs one `pkt_handler` thread per queue of a live WireCAP engine
/// until the NIC stops, then reports per-thread counts.
///
/// The caller owns the injection side: inject packets into `nic`, call
/// [`LiveNic::stop`], then collect the reports this function returns.
pub fn run(nic: Arc<LiveNic>, cfg: WireCapConfig, x: u32) -> Vec<HandlerReport> {
    let queues = nic.queue_count();
    let groups = if cfg.threshold.is_some() {
        BuddyGroups::single(queues)
    } else {
        BuddyGroups::isolated(queues)
    };
    let cap = LiveWireCap::start(Arc::clone(&nic), cfg, groups);
    let workers: Vec<_> = (0..queues)
        .map(|q| {
            let mut consumer = cap.consumer(q);
            std::thread::Builder::new()
                .name(format!("pkt-handler-{q}"))
                .spawn(move || {
                    let mut handler = PktHandler::paper(x);
                    let mut matched = 0u64;
                    while let Some(chunk) = consumer.next_chunk() {
                        // Zero-copy consumption: the filter runs on
                        // borrowed arena slices; recycling the chunk
                        // ends the view's lifetime.
                        for pkt in consumer.view(&chunk).iter() {
                            if handler.handle_bytes(pkt.data) {
                                matched += 1;
                            }
                        }
                        consumer.recycle(chunk);
                    }
                    HandlerReport {
                        queue: q,
                        processed: handler.processed(),
                        matched,
                    }
                })
                .expect("spawning pkt_handler thread")
        })
        .collect();
    let reports = workers
        .into_iter()
        .map(|w| w.join().expect("pkt_handler thread panicked"))
        .collect();
    cap.shutdown();
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use netproto::{FlowKey, PacketBuilder};
    use std::net::Ipv4Addr;

    #[test]
    fn all_threads_process_their_share() {
        let nic = LiveNic::new(2, 4096);
        let injector = {
            let nic = Arc::clone(&nic);
            std::thread::spawn(move || {
                let mut b = PacketBuilder::new();
                for i in 0..1000u16 {
                    let flow = FlowKey::udp(
                        Ipv4Addr::new(131, 225, 2, (i % 250) as u8 + 1),
                        1000 + i,
                        Ipv4Addr::new(8, 8, 8, 8),
                        53,
                    );
                    let pkt = b.build_packet(u64::from(i), &flow, 100).unwrap();
                    while nic.inject(pkt.clone()).is_none() {
                        std::thread::yield_now();
                    }
                }
                nic.stop();
            })
        };
        let mut cfg = WireCapConfig::basic(64, 32, 0);
        cfg.capture_timeout_ns = 1_000_000;
        let reports = run(Arc::clone(&nic), cfg, 3);
        injector.join().unwrap();
        let processed: u64 = reports.iter().map(|r| r.processed).sum();
        let matched: u64 = reports.iter().map(|r| r.matched).sum();
        assert_eq!(processed, 1000);
        assert_eq!(matched, 1000); // every packet matches the paper filter
        assert_eq!(reports.len(), 2);
    }
}
