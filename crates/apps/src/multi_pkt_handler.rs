//! `multi_pkt_handler` — the multi-threaded experiment application.
//!
//! "It is a multi-threaded version of pkt_handler, called
//! multi_pkt_handler, which can spawn one or multiple pkt_handler threads
//! that share the same address space." (§4)
//!
//! This is the live-mode driver: one `pkt_handler` thread per receive
//! queue, consuming chunks from the live WireCAP engine. Because all
//! threads belong to one process, the engine forms one buddy group over
//! all queues — the advanced-mode setup of §4.
//!
//! The engine it starts honors the live-telemetry environment
//! (`WIRECAP_TELEMETRY_LISTEN`, `WIRECAP_TELEMETRY_SAMPLE_MS`,
//! `WIRECAP_TELEMETRY_FLIGHT_DIR` — DESIGN.md §4.9), so any run of
//! this driver can be scraped while it processes.

use crate::pkt_handler::PktHandler;
use flowstat::{merge_top_k, FlowSink, FlowSinkConfig};
use netproto::FlowKey;
use nicsim::livenic::LiveNic;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::{BuddyGroup, PoolWorkerReport, WireCapConfig};

/// Results from one pkt_handler thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandlerReport {
    /// Queue the thread consumed from.
    pub queue: usize,
    /// Packets processed.
    pub processed: u64,
    /// Packets that matched the filter.
    pub matched: u64,
}

/// Runs one `pkt_handler` thread per queue of a live WireCAP engine
/// until the NIC stops, then reports per-thread counts.
///
/// The caller owns the injection side: inject packets into `nic`, call
/// [`LiveNic::stop`], then collect the reports this function returns.
pub fn run(nic: Arc<LiveNic>, cfg: WireCapConfig, x: u32) -> Vec<HandlerReport> {
    let queues = nic.queue_count();
    let groups = if cfg.threshold.is_some() {
        BuddyGroups::single(queues)
    } else {
        BuddyGroups::isolated(queues)
    };
    let cap = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(groups)
        .start();
    let workers: Vec<_> = (0..queues)
        .map(|q| {
            let mut consumer = cap.consumer(q);
            std::thread::Builder::new()
                .name(format!("pkt-handler-{q}"))
                .spawn(move || {
                    let mut handler = PktHandler::paper(x);
                    let mut matched = 0u64;
                    while let Some(chunk) = consumer.next_chunk() {
                        // Zero-copy consumption: the filter runs on
                        // borrowed arena slices; recycling the chunk
                        // ends the view's lifetime.
                        for pkt in consumer.view(&chunk).iter() {
                            if handler.handle_bytes(pkt.data) {
                                matched += 1;
                            }
                        }
                        consumer.recycle(chunk);
                    }
                    HandlerReport {
                        queue: q,
                        processed: handler.processed(),
                        matched,
                    }
                })
                .expect("spawning pkt_handler thread")
        })
        .collect();
    let reports = workers
        .into_iter()
        .map(|w| w.join().expect("pkt_handler thread panicked"))
        .collect();
    cap.shutdown();
    reports
}

/// Results from one pooled `multi_pkt_handler` run.
#[derive(Debug, Clone)]
pub struct PooledReport {
    /// Packets the handlers processed (across all workers).
    pub processed: u64,
    /// Packets that matched the filter.
    pub matched: u64,
    /// Chunks that moved between workers by stealing.
    pub stolen_chunks: u64,
    /// Per-worker accounting from the pool.
    pub workers: Vec<PoolWorkerReport>,
}

/// Runs a work-stealing [`wirecap::ConsumerPool`] of `workers` threads
/// over *all* queues of a live WireCAP engine until the NIC stops —
/// the multi-core variant of [`run`] (DESIGN.md §4.11).
///
/// Where [`run`] binds one thread to each queue (and a skewed flow mix
/// leaves most of them idle), the pool lets any worker steal sealed
/// chunks from a hot queue's backlog, so delivery throughput follows
/// the worker count rather than the flow distribution. Each worker
/// thread keeps its own [`PktHandler`] (the BPF filter program is
/// compiled once per worker, not per chunk).
pub fn run_pooled(nic: Arc<LiveNic>, cfg: WireCapConfig, x: u32, workers: usize) -> PooledReport {
    let queues = nic.queue_count();
    let cap = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(BuddyGroups::single(queues))
        .start();
    let group = BuddyGroup::all(queues);
    let processed = Arc::new(AtomicU64::new(0));
    let matched = Arc::new(AtomicU64::new(0));
    let pool = {
        let processed = Arc::clone(&processed);
        let matched = Arc::clone(&matched);
        cap.consumer_pool(&group, workers, move |d| {
            thread_local! {
                static HANDLER: RefCell<Option<PktHandler>> = const { RefCell::new(None) };
            }
            HANDLER.with(|slot| {
                let mut slot = slot.borrow_mut();
                let handler = slot.get_or_insert_with(|| PktHandler::paper(x));
                let mut m = 0u64;
                for pkt in d.view().iter() {
                    if handler.handle_bytes(pkt.data) {
                        m += 1;
                    }
                }
                processed.fetch_add(d.len() as u64, Ordering::Relaxed);
                matched.fetch_add(m, Ordering::Relaxed);
            });
        })
    };
    let reports = pool.join();
    cap.shutdown();
    PooledReport {
        processed: processed.load(Ordering::Relaxed),
        matched: matched.load(Ordering::Relaxed),
        stolen_chunks: reports.iter().map(|r| r.stolen_chunks).sum(),
        workers: reports,
    }
}

/// Results from one flow-tracking `multi_pkt_handler` run.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Packets the handlers processed (across all workers).
    pub processed: u64,
    /// Packets that matched the filter.
    pub matched: u64,
    /// Frames that did not parse to an IPv4 5-tuple.
    pub unparsed: u64,
    /// Packets recorded into flow tables (== processed - unparsed).
    pub tracked_packets: u64,
    /// Flows live across all workers' tables at end of run.
    pub live_flows: u64,
    /// Flows displaced by LRU eviction across all workers.
    pub evicted_flows: u64,
    /// Packets folded into eviction aggregates across all workers.
    pub evicted_packets: u64,
    /// Occupied non-matching slots scanned across all workers.
    pub hash_collisions: u64,
    /// The merged global top flows, strongest first.
    pub top: Vec<(FlowKey, u64)>,
    /// Per-worker accounting from the pool.
    pub workers: Vec<PoolWorkerReport>,
}

/// [`run_pooled`] with online flow analytics: each worker keeps a
/// [`FlowSink`] (exact set-associative flow table + top-K candidate
/// tracker) beside its BPF filter, and after every chunk flushes its
/// counter deltas into the home queue's `flow` telemetry shard. After
/// the pool drains, the per-worker trackers merge into the global top
/// `k` (DESIGN.md §4.15).
pub fn run_pooled_flows(
    nic: Arc<LiveNic>,
    cfg: WireCapConfig,
    x: u32,
    workers: usize,
    flow_cfg: FlowSinkConfig,
    k: usize,
) -> FlowReport {
    let queues = nic.queue_count();
    let cap = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(BuddyGroups::single(queues))
        .start();
    let group = BuddyGroup::all(queues);
    let reg = cap.registry_handle();
    let processed = Arc::new(AtomicU64::new(0));
    let matched = Arc::new(AtomicU64::new(0));
    // One sink per worker. The pool guarantees one delivery at a time
    // per worker index, so each Mutex is uncontended — it exists only
    // to make the shared Vec Sync.
    let sinks: Arc<Vec<Mutex<FlowSink>>> = Arc::new(
        (0..workers.max(1))
            .map(|_| Mutex::new(FlowSink::new(flow_cfg)))
            .collect(),
    );
    // Per-worker occupancy levels: each flush republishes the global
    // sum, so the gauge is a consistent engine-wide level no matter
    // how workers map onto queues.
    let occupancy: Arc<Vec<AtomicU64>> =
        Arc::new((0..workers.max(1)).map(|_| AtomicU64::new(0)).collect());
    let pool = {
        let processed = Arc::clone(&processed);
        let matched = Arc::clone(&matched);
        let sinks = Arc::clone(&sinks);
        let occupancy = Arc::clone(&occupancy);
        cap.consumer_pool(&group, workers, move |d| {
            thread_local! {
                static HANDLER: RefCell<Option<PktHandler>> = const { RefCell::new(None) };
            }
            HANDLER.with(|slot| {
                let mut slot = slot.borrow_mut();
                let handler = slot.get_or_insert_with(|| PktHandler::paper(x));
                let mut m = 0u64;
                for pkt in d.view().iter() {
                    if handler.handle_bytes(pkt.data) {
                        m += 1;
                    }
                }
                processed.fetch_add(d.len() as u64, Ordering::Relaxed);
                matched.fetch_add(m, Ordering::Relaxed);
            });
            let mut sink = sinks[d.worker()].lock().expect("flow sink poisoned");
            sink.record_frames(d.view().iter().map(|p| p.data));
            let deltas = sink.drain_deltas();
            drop(sink);
            // Counter deltas charge the chunk's home queue (multi-writer
            // shard: several workers may drain one hot queue).
            let flow = &reg.queue(d.home()).flow.0;
            flow.flow_tracked_packets.add(deltas.packets);
            flow.flow_evicted_flows.add(deltas.evicted_flows);
            flow.flow_evicted_packets.add(deltas.evicted_packets);
            flow.flow_hash_collisions.add(deltas.hash_collisions);
            occupancy[d.worker()].store(deltas.occupancy, Ordering::Relaxed);
            let total: u64 = occupancy.iter().map(|o| o.load(Ordering::Relaxed)).sum();
            reg.queue(0).flow.0.flow_table_occupancy.set(total);
        })
    };
    let reports = pool.join();
    cap.shutdown();
    let Ok(sinks) = Arc::try_unwrap(sinks) else {
        unreachable!("pool joined, sinks unshared");
    };
    let sinks: Vec<FlowSink> = sinks
        .into_iter()
        .map(|m| m.into_inner().expect("flow sink poisoned"))
        .collect();
    let refs: Vec<&FlowSink> = sinks.iter().collect();
    let top = merge_top_k(&refs, k);
    let mut report = FlowReport {
        processed: processed.load(Ordering::Relaxed),
        matched: matched.load(Ordering::Relaxed),
        unparsed: 0,
        tracked_packets: 0,
        live_flows: 0,
        evicted_flows: 0,
        evicted_packets: 0,
        hash_collisions: 0,
        top,
        workers: reports,
    };
    for s in &sinks {
        let st = s.stats();
        report.unparsed += s.unparsed();
        report.tracked_packets += st.tracked_packets;
        report.live_flows += st.live_flows;
        report.evicted_flows += st.evicted_flows;
        report.evicted_packets += st.evicted_packets;
        report.hash_collisions += st.hash_collisions;
    }
    report
}

/// [`run_concurrent`] with online flow analytics — the concurrent
/// claim-path variant of [`run_pooled_flows`].
pub fn run_concurrent_flows(
    nic: Arc<LiveNic>,
    cfg: WireCapConfig,
    x: u32,
    workers: usize,
    in_order: bool,
    flow_cfg: FlowSinkConfig,
    k: usize,
) -> FlowReport {
    let mut cfg = cfg;
    cfg.concurrent_queue = true;
    cfg.in_order = in_order;
    run_pooled_flows(nic, cfg, x, workers, flow_cfg, k)
}

/// Runs a COREC-style *concurrent* pool of `workers` threads over all
/// queues of a live WireCAP engine until the NIC stops — the
/// single-hot-queue variant of [`run_pooled`] (DESIGN.md §4.12).
///
/// Where [`run_pooled`] still assigns each queue to one owning worker
/// and rebalances by stealing whole chunks, this mode lets every
/// worker claim chunks straight off the *same* queue's sealed stream
/// via a lock-free claim word, so even traffic pinned to one queue is
/// drained by all `workers` threads at once. With `in_order` the
/// engine additionally re-serializes delivery per home queue through a
/// bounded reorder buffer, trading a little latency for seal-order
/// delivery.
pub fn run_concurrent(
    nic: Arc<LiveNic>,
    cfg: WireCapConfig,
    x: u32,
    workers: usize,
    in_order: bool,
) -> PooledReport {
    let mut cfg = cfg;
    cfg.concurrent_queue = true;
    cfg.in_order = in_order;
    run_pooled(nic, cfg, x, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netproto::{FlowKey, PacketBuilder};
    use std::net::Ipv4Addr;

    #[test]
    fn all_threads_process_their_share() {
        let nic = LiveNic::new(2, 4096);
        let injector = {
            let nic = Arc::clone(&nic);
            std::thread::spawn(move || {
                let mut b = PacketBuilder::new();
                for i in 0..1000u16 {
                    let flow = FlowKey::udp(
                        Ipv4Addr::new(131, 225, 2, (i % 250) as u8 + 1),
                        1000 + i,
                        Ipv4Addr::new(8, 8, 8, 8),
                        53,
                    );
                    let pkt = b.build_packet(u64::from(i), &flow, 100).unwrap();
                    while nic.inject(pkt.clone()).is_none() {
                        std::thread::yield_now();
                    }
                }
                nic.stop();
            })
        };
        let mut cfg = WireCapConfig::basic(64, 32, 0);
        cfg.capture_timeout_ns = 1_000_000;
        let reports = run(Arc::clone(&nic), cfg, 3);
        injector.join().unwrap();
        let processed: u64 = reports.iter().map(|r| r.processed).sum();
        let matched: u64 = reports.iter().map(|r| r.matched).sum();
        assert_eq!(processed, 1000);
        assert_eq!(matched, 1000); // every packet matches the paper filter
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn pooled_run_processes_everything_under_skew() {
        let nic = LiveNic::new(2, 4096);
        let injector = {
            let nic = Arc::clone(&nic);
            std::thread::spawn(move || {
                let mut b = PacketBuilder::new();
                // One flow: everything lands on a single queue, the
                // worst case for per-queue consumers and the case the
                // pool exists for.
                let flow = FlowKey::udp(
                    Ipv4Addr::new(131, 225, 2, 9),
                    7_777,
                    Ipv4Addr::new(8, 8, 8, 8),
                    53,
                );
                for i in 0..1000u64 {
                    let pkt = b.build_packet(i * 1_000, &flow, 100).unwrap();
                    while nic.inject(pkt.clone()).is_none() {
                        std::thread::yield_now();
                    }
                }
                nic.stop();
            })
        };
        let mut cfg = WireCapConfig::basic(64, 32, 0);
        cfg.capture_timeout_ns = 1_000_000;
        let report = run_pooled(Arc::clone(&nic), cfg, 3, 2);
        injector.join().unwrap();
        assert_eq!(report.processed, 1000);
        assert_eq!(report.matched, 1000);
        assert_eq!(report.workers.len(), 2);
        assert_eq!(
            report.workers.iter().map(|r| r.packets).sum::<u64>(),
            1000,
            "worker reports disagree with handler counts"
        );
    }

    #[test]
    fn flow_mode_tracks_flows_and_finds_the_elephant() {
        let nic = LiveNic::new(2, 4096);
        let elephant = FlowKey::udp(
            Ipv4Addr::new(131, 225, 2, 9),
            7_777,
            Ipv4Addr::new(8, 8, 8, 8),
            53,
        );
        let injector = {
            let nic = Arc::clone(&nic);
            std::thread::spawn(move || {
                let mut b = PacketBuilder::new();
                for i in 0..900u64 {
                    // Two thirds elephant, one third spread over mice.
                    let flow = if i % 3 != 0 {
                        elephant
                    } else {
                        FlowKey::udp(
                            Ipv4Addr::new(10, 0, 1, (i % 200) as u8 + 1),
                            2_000 + (i % 200) as u16,
                            Ipv4Addr::new(8, 8, 8, 8),
                            53,
                        )
                    };
                    let pkt = b.build_packet(i * 1_000, &flow, 100).unwrap();
                    while nic.inject(pkt.clone()).is_none() {
                        std::thread::yield_now();
                    }
                }
                nic.stop();
            })
        };
        let mut cfg = WireCapConfig::basic(64, 32, 0);
        cfg.capture_timeout_ns = 1_000_000;
        let flow_cfg = FlowSinkConfig {
            table_capacity: 4096,
            topk_capacity: 64,
        };
        let report = run_pooled_flows(Arc::clone(&nic), cfg, 3, 2, flow_cfg, 4);
        injector.join().unwrap();
        assert_eq!(report.processed, 900);
        assert_eq!(report.unparsed, 0);
        assert_eq!(report.tracked_packets, 900);
        assert_eq!(report.evicted_flows, 0, "table sized to hold every flow");
        assert_eq!(report.top[0], (elephant, 600));
        let live_sum: u64 = report.tracked_packets - report.evicted_packets;
        assert_eq!(live_sum, 900, "every packet sits in a live flow count");
    }

    #[test]
    fn concurrent_flow_mode_conserves_on_one_hot_queue() {
        let nic = LiveNic::new(2, 4096);
        let flow = FlowKey::udp(
            Ipv4Addr::new(131, 225, 2, 9),
            7_777,
            Ipv4Addr::new(8, 8, 8, 8),
            53,
        );
        let injector = {
            let nic = Arc::clone(&nic);
            std::thread::spawn(move || {
                let mut b = PacketBuilder::new();
                for i in 0..800u64 {
                    let pkt = b.build_packet(i * 1_000, &flow, 100).unwrap();
                    while nic.inject(pkt.clone()).is_none() {
                        std::thread::yield_now();
                    }
                }
                nic.stop();
            })
        };
        let mut cfg = WireCapConfig::basic(64, 32, 0);
        cfg.capture_timeout_ns = 1_000_000;
        let report = run_concurrent_flows(
            Arc::clone(&nic),
            cfg,
            3,
            3,
            false,
            FlowSinkConfig {
                table_capacity: 1024,
                topk_capacity: 16,
            },
            1,
        );
        injector.join().unwrap();
        assert_eq!(report.processed, 800);
        assert_eq!(report.tracked_packets, 800);
        assert_eq!(report.top, vec![(flow, 800)]);
    }

    #[test]
    fn concurrent_run_processes_everything_on_one_hot_queue() {
        for in_order in [false, true] {
            let nic = LiveNic::new(2, 4096);
            let injector = {
                let nic = Arc::clone(&nic);
                std::thread::spawn(move || {
                    let mut b = PacketBuilder::new();
                    // One flow, one queue: the concurrent claim path's
                    // reason for existing.
                    let flow = FlowKey::udp(
                        Ipv4Addr::new(131, 225, 2, 9),
                        7_777,
                        Ipv4Addr::new(8, 8, 8, 8),
                        53,
                    );
                    for i in 0..1000u64 {
                        let pkt = b.build_packet(i * 1_000, &flow, 100).unwrap();
                        while nic.inject(pkt.clone()).is_none() {
                            std::thread::yield_now();
                        }
                    }
                    nic.stop();
                })
            };
            let mut cfg = WireCapConfig::basic(64, 32, 0);
            cfg.capture_timeout_ns = 1_000_000;
            let report = run_concurrent(Arc::clone(&nic), cfg, 3, 3, in_order);
            injector.join().unwrap();
            assert_eq!(report.processed, 1000, "in_order={in_order}");
            assert_eq!(report.matched, 1000, "in_order={in_order}");
            assert_eq!(report.workers.len(), 3);
            assert_eq!(
                report.workers.iter().map(|r| r.packets).sum::<u64>(),
                1000,
                "worker reports disagree with handler counts (in_order={in_order})"
            );
            assert_eq!(
                report.stolen_chunks, 0,
                "concurrent mode claims, it never steals"
            );
        }
    }
}
