//! `capture_and_save` — the capture-to-disk experiment harness.
//!
//! The paper's capture-and-save experiment (§4) runs the engine while
//! streaming every captured packet to disk, and asks what the save leg
//! costs: does writing slow capture down, and when the disk cannot keep
//! up, where do the losses land? This harness drives a live engine over
//! a [`LiveNic`] with a caller-chosen [`SinkMode`]:
//!
//! * [`SinkMode::Count`] — consume and count (the pure-capture
//!   baseline);
//! * [`SinkMode::Disk`] — attach a [`capdisk::DiskSink`]; the bounded
//!   handoff's drop policy guarantees the capture path never blocks on
//!   I/O, so capture-side numbers stay comparable across modes.
//!
//! The caller owns injection, mirroring [`crate::multi_pkt_handler`]:
//! inject into `nic`, call [`LiveNic::stop`], and read the returned
//! [`SaveOutcome`].

use capdisk::{DiskReport, DiskSink, SinkMode};
use nicsim::livenic::LiveNic;
use std::sync::Arc;
use telemetry::EngineSnapshot;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::WireCapConfig;

/// Outcome of one capture(-and-save) run.
#[derive(Debug)]
pub struct SaveOutcome {
    /// Packets delivered to the consumer side (all queues).
    pub delivered_packets: u64,
    /// Packets lost on the capture side (pool/queue exhaustion).
    pub capture_drop_packets: u64,
    /// The disk sink's report; `None` in [`SinkMode::Count`] runs.
    pub disk: Option<DiskReport>,
    /// Final engine snapshot, taken after consumers finished but
    /// before shutdown.
    pub snapshot: EngineSnapshot,
}

impl SaveOutcome {
    /// Packets the disk leg wrote (0 in count mode).
    pub fn written_packets(&self) -> u64 {
        self.disk.as_ref().map_or(0, DiskReport::written_packets)
    }

    /// Packets the disk leg shed (0 in count mode).
    pub fn disk_drop_packets(&self) -> u64 {
        self.disk.as_ref().map_or(0, DiskReport::dropped_packets)
    }

    /// True when every delivered packet is accounted for by the sink:
    /// `delivered == written + disk_drop` (trivially true in count
    /// mode).
    pub fn is_conserved(&self) -> bool {
        match &self.disk {
            Some(d) => d.is_conserved() && self.delivered_packets == d.delivered_packets(),
            None => true,
        }
    }
}

/// Runs a live engine over `nic` with the given sink until the NIC
/// stops and the capture streams drain.
///
/// Buddy grouping follows the config, as in
/// [`crate::multi_pkt_handler::run`]: a threshold means one group over
/// all queues (advanced mode), none means isolated queues.
pub fn run(nic: Arc<LiveNic>, cfg: WireCapConfig, sink: SinkMode) -> SaveOutcome {
    let queues = nic.queue_count();
    let groups = if cfg.threshold.is_some() {
        BuddyGroups::single(queues)
    } else {
        BuddyGroups::isolated(queues)
    };
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(groups)
        .start();
    let (delivered, disk) = match sink {
        SinkMode::Disk(cfg) => {
            let sink = DiskSink::attach(&engine, &cfg).expect("creating capture directory");
            let report = sink.wait();
            (report.delivered_packets(), Some(report))
        }
        SinkMode::Count => {
            let counters: Vec<_> = (0..queues)
                .map(|q| {
                    let mut c = engine.consumer(q);
                    std::thread::Builder::new()
                        .name(format!("capture-count-{q}"))
                        .spawn(move || {
                            let mut n = 0u64;
                            while let Some(chunk) = c.next_chunk() {
                                n += chunk.len() as u64;
                                c.recycle(chunk);
                            }
                            n
                        })
                        .expect("spawning counting consumer")
                })
                .collect();
            let delivered = counters
                .into_iter()
                .map(|t| t.join().expect("counting consumer panicked"))
                .sum();
            (delivered, None)
        }
    };
    let snapshot = engine.snapshot();
    let capture_drop_packets = snapshot.queues.iter().map(|q| q.capture_drop_packets).sum();
    engine.shutdown();
    SaveOutcome {
        delivered_packets: delivered,
        capture_drop_packets,
        disk,
        snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capdisk::DiskSinkConfig;
    use netproto::{FlowKey, PacketBuilder};
    use std::net::Ipv4Addr;

    fn inject_and_stop(nic: &Arc<LiveNic>, n: u64) {
        let mut b = PacketBuilder::new();
        for i in 0..n {
            let flow = FlowKey::udp(
                Ipv4Addr::new(10, 1, (i % 200) as u8, 1),
                (2_000 + i % 10_000) as u16,
                Ipv4Addr::new(131, 225, 2, 1),
                443,
            );
            let pkt = b.build_packet(i * 1_000, &flow, 150).unwrap();
            while nic.inject(pkt.clone()).is_none() {
                std::thread::yield_now();
            }
        }
        nic.stop();
    }

    fn cfg() -> WireCapConfig {
        let mut cfg = WireCapConfig::basic(64, 32, 0);
        cfg.capture_timeout_ns = 2_000_000;
        cfg
    }

    #[test]
    fn count_mode_delivers_everything() {
        let nic = LiveNic::new(2, 4096);
        let injector = {
            let nic = Arc::clone(&nic);
            std::thread::spawn(move || inject_and_stop(&nic, 2_000))
        };
        let out = run(Arc::clone(&nic), cfg(), SinkMode::Count);
        injector.join().unwrap();
        assert_eq!(out.delivered_packets, 2_000);
        assert!(out.disk.is_none());
        assert!(out.is_conserved());
    }

    #[test]
    fn disk_mode_conserves() {
        let dir = std::env::temp_dir().join(format!("apps-save-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let nic = LiveNic::new(2, 4096);
        let injector = {
            let nic = Arc::clone(&nic);
            std::thread::spawn(move || inject_and_stop(&nic, 2_000))
        };
        let out = run(
            Arc::clone(&nic),
            cfg(),
            SinkMode::Disk(DiskSinkConfig::new(&dir)),
        );
        injector.join().unwrap();
        assert_eq!(out.delivered_packets, 2_000);
        assert!(out.is_conserved(), "{out:?}");
        assert_eq!(out.written_packets() + out.disk_drop_packets(), 2_000);
        let tel_written: u64 = out
            .snapshot
            .queues
            .iter()
            .map(|q| q.disk_written_packets)
            .sum();
        assert_eq!(tel_written, out.written_packets());
        std::fs::remove_dir_all(&dir).ok();
    }
}
