//! IPv4 header view and emitter.

use crate::checksum;
use crate::{Error, Result};
use std::net::Ipv4Addr;

/// Minimum (and, without options, the only) IPv4 header length.
pub const MIN_HEADER_LEN: usize = 20;

/// Immutable view of an IPv4 header plus payload.
#[derive(Debug, Clone, Copy)]
pub struct Ipv4Header<'a> {
    buf: &'a [u8],
    header_len: usize,
}

impl<'a> Ipv4Header<'a> {
    /// Parses an IPv4 packet, validating version, IHL and total length.
    pub fn parse(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < MIN_HEADER_LEN {
            return Err(Error::Truncated);
        }
        if buf[0] >> 4 != 4 {
            return Err(Error::Malformed);
        }
        let header_len = usize::from(buf[0] & 0x0f) * 4;
        if header_len < MIN_HEADER_LEN || buf.len() < header_len {
            return Err(Error::Malformed);
        }
        let total_len = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
        if total_len < header_len {
            return Err(Error::Malformed);
        }
        // A total length beyond the captured bytes means the datagram was
        // cut short (snapped capture or a lying header). Reject it here
        // instead of letting `payload()` silently truncate to the buffer;
        // callers that deal in deliberately-truncated datagrams (ICMP
        // error quotes) use `parse_prefix`.
        if total_len > buf.len() {
            return Err(Error::Truncated);
        }
        Ok(Ipv4Header { buf, header_len })
    }

    /// Parses a possibly-truncated IPv4 datagram prefix: the full header
    /// must be present, but the total-length field may exceed the buffer.
    ///
    /// This is for bytes that are *known* to be cut short — ICMP error
    /// bodies quote only the original header plus 8 payload bytes, and
    /// snap-length captures clip long datagrams. `payload()` is then
    /// explicitly clamped to the captured bytes.
    pub fn parse_prefix(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < MIN_HEADER_LEN {
            return Err(Error::Truncated);
        }
        if buf[0] >> 4 != 4 {
            return Err(Error::Malformed);
        }
        let header_len = usize::from(buf[0] & 0x0f) * 4;
        if header_len < MIN_HEADER_LEN || buf.len() < header_len {
            return Err(Error::Malformed);
        }
        let total_len = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
        if total_len < header_len {
            return Err(Error::Malformed);
        }
        Ok(Ipv4Header { buf, header_len })
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        self.header_len
    }

    /// Total length field (header + payload).
    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.buf[4], self.buf[5]])
    }

    /// Don't-fragment flag.
    pub fn dont_frag(&self) -> bool {
        self.buf[6] & 0x40 != 0
    }

    /// More-fragments flag.
    pub fn more_frags(&self) -> bool {
        self.buf[6] & 0x20 != 0
    }

    /// Fragment offset in 8-byte units.
    pub fn frag_offset(&self) -> u16 {
        u16::from_be_bytes([self.buf[6] & 0x1f, self.buf[7]])
    }

    /// Time-to-live field.
    pub fn ttl(&self) -> u8 {
        self.buf[8]
    }

    /// Protocol number of the payload.
    pub fn protocol(&self) -> u8 {
        self.buf[9]
    }

    /// Stored header checksum.
    pub fn stored_checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[10], self.buf[11]])
    }

    /// Whether the stored checksum is valid.
    pub fn checksum_ok(&self) -> bool {
        checksum::verify(&self.buf[..self.header_len])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.buf[12], self.buf[13], self.buf[14], self.buf[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.buf[16], self.buf[17], self.buf[18], self.buf[19])
    }

    /// Payload slice, bounded by the total-length field (Ethernet padding
    /// after the IP datagram is excluded). `parse` guarantees the total
    /// length fits the buffer; for `parse_prefix` headers the slice is
    /// clamped to the captured bytes.
    pub fn payload(&self) -> &'a [u8] {
        let end = usize::from(self.total_len()).min(self.buf.len());
        &self.buf[self.header_len..end]
    }
}

/// Field values for emitting an IPv4 header (no options).
#[derive(Debug, Clone, Copy)]
pub struct Ipv4Fields {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol number.
    pub protocol: u8,
    /// Payload length in bytes (total length = 20 + payload).
    pub payload_len: u16,
    /// Time-to-live; 64 is a conventional default.
    pub ttl: u8,
    /// Identification field.
    pub ident: u16,
}

/// Emits a 20-byte IPv4 header (checksum filled in) at the front of `buf`.
pub fn emit(buf: &mut [u8], f: &Ipv4Fields) -> Result<()> {
    if buf.len() < MIN_HEADER_LEN {
        return Err(Error::Truncated);
    }
    let total = MIN_HEADER_LEN as u16 + f.payload_len;
    buf[0] = 0x45; // version 4, IHL 5
    buf[1] = 0; // DSCP/ECN
    buf[2..4].copy_from_slice(&total.to_be_bytes());
    buf[4..6].copy_from_slice(&f.ident.to_be_bytes());
    buf[6] = 0x40; // DF set, no fragmentation in our traffic
    buf[7] = 0;
    buf[8] = f.ttl;
    buf[9] = f.protocol;
    buf[10] = 0;
    buf[11] = 0;
    buf[12..16].copy_from_slice(&f.src.octets());
    buf[16..20].copy_from_slice(&f.dst.octets());
    let csum = checksum::checksum(&buf[..MIN_HEADER_LEN]);
    buf[10..12].copy_from_slice(&csum.to_be_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> Ipv4Fields {
        Ipv4Fields {
            src: Ipv4Addr::new(131, 225, 2, 1),
            dst: Ipv4Addr::new(192, 168, 0, 7),
            protocol: 17,
            payload_len: 8,
            ttl: 64,
            ident: 0xbeef,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let mut buf = [0u8; 28];
        emit(&mut buf, &fields()).unwrap();
        let h = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(h.src(), fields().src);
        assert_eq!(h.dst(), fields().dst);
        assert_eq!(h.protocol(), 17);
        assert_eq!(h.total_len(), 28);
        assert_eq!(h.ttl(), 64);
        assert_eq!(h.ident(), 0xbeef);
        assert!(h.dont_frag());
        assert!(!h.more_frags());
        assert_eq!(h.frag_offset(), 0);
        assert!(h.checksum_ok());
        assert_eq!(h.payload().len(), 8);
    }

    #[test]
    fn parse_rejects_bad_version() {
        let mut buf = [0u8; 28];
        emit(&mut buf, &fields()).unwrap();
        buf[0] = 0x65; // version 6
        assert_eq!(Ipv4Header::parse(&buf).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn parse_rejects_short_ihl() {
        let mut buf = [0u8; 28];
        emit(&mut buf, &fields()).unwrap();
        buf[0] = 0x44; // IHL 4 => 16 bytes, below minimum
        assert_eq!(Ipv4Header::parse(&buf).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut buf = [0u8; 28];
        emit(&mut buf, &fields()).unwrap();
        buf[15] ^= 0xff;
        let h = Ipv4Header::parse(&buf).unwrap();
        assert!(!h.checksum_ok());
    }

    #[test]
    fn parse_rejects_total_len_beyond_buffer() {
        let mut buf = [0u8; 28];
        emit(&mut buf, &fields()).unwrap();
        // Claim 20 + 40 bytes of datagram while only 28 are captured.
        buf[2..4].copy_from_slice(&60u16.to_be_bytes());
        assert_eq!(Ipv4Header::parse(&buf).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn payload_excludes_ethernet_padding() {
        // 8-byte payload but buffer carries 12 extra pad bytes.
        let mut buf = vec![0u8; 40];
        emit(&mut buf, &fields()).unwrap();
        let h = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(h.payload().len(), 8);
    }
}
