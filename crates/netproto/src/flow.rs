//! Flow identification: the IP 5-tuple and transport protocol.
//!
//! The paper's NIC steering, buddy-group offloading and application-logic
//! preservation are all phrased in terms of *flows* defined by "one or more
//! fields of the IP 5-tuple" (§1). [`FlowKey`] is that 5-tuple.

use std::net::Ipv4Addr;

/// Transport protocol of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// Transmission Control Protocol (IP protocol 6).
    Tcp,
    /// User Datagram Protocol (IP protocol 17).
    Udp,
    /// Any other IP protocol, carried by number.
    Other(u8),
}

impl Protocol {
    /// The IP protocol number.
    pub fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }

    /// Classifies an IP protocol number.
    pub fn from_number(n: u8) -> Self {
        match n {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

/// An IPv4 5-tuple identifying a flow.
///
/// All experiments in the paper use IPv4 traffic (the BPF filter is
/// `131.225.2 and udp`), so the flow key is IPv4-only; IPv6 headers are
/// still parseable via [`crate::ipv6`] for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Protocol,
}

impl FlowKey {
    /// Creates a TCP flow key.
    pub fn tcp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        FlowKey {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: Protocol::Tcp,
        }
    }

    /// Creates a UDP flow key.
    pub fn udp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        FlowKey {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: Protocol::Udp,
        }
    }

    /// The reverse-direction key (src and dst swapped).
    pub fn reversed(&self) -> Self {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// A direction-insensitive canonical form: the lexicographically smaller
    /// of `self` and `self.reversed()`. Both directions of a connection map
    /// to the same canonical key.
    pub fn canonical(&self) -> Self {
        let rev = self.reversed();
        if (self.src_ip, self.src_port) <= (rev.src_ip, rev.src_port) {
            *self
        } else {
            rev
        }
    }
}

impl core::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let p = match self.proto {
            Protocol::Tcp => "tcp",
            Protocol::Udp => "udp",
            Protocol::Other(_) => "ip",
        };
        write!(
            f,
            "{} {}:{} > {}:{}",
            p, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(131, 225, 2, 10),
            50000,
            Ipv4Addr::new(10, 0, 0, 1),
            443,
        )
    }

    #[test]
    fn protocol_numbers_roundtrip() {
        for n in 0u8..=255 {
            assert_eq!(Protocol::from_number(n).number(), n);
        }
    }

    #[test]
    fn reversed_twice_is_identity() {
        let k = key();
        assert_eq!(k.reversed().reversed(), k);
    }

    #[test]
    fn canonical_is_direction_insensitive() {
        let k = key();
        assert_eq!(k.canonical(), k.reversed().canonical());
    }

    #[test]
    fn display_formats_tuple() {
        let s = key().to_string();
        assert!(s.contains("131.225.2.10:50000"));
        assert!(s.contains("10.0.0.1:443"));
        assert!(s.starts_with("tcp"));
    }
}
