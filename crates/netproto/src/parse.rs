//! One-shot frame classification.

use crate::ethernet::{EtherType, EthernetFrame, MacAddr};
use crate::flow::{FlowKey, Protocol};
use crate::ipv4::Ipv4Header;
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;
use crate::vlan::{VlanTag, TAG_LEN, TPID};
use crate::{Error, Result};
use std::net::Ipv4Addr;

/// The 802.1ad (QinQ) service-tag TPID; the inner tag uses [`TPID`].
const TPID_QINQ: u16 = 0x88a8;

/// How many stacked 802.1Q tags `parse_frame` will traverse (QinQ depth).
const MAX_VLAN_TAGS: usize = 2;

/// Network-layer classification of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkLayer {
    /// IPv4 datagram.
    Ipv4,
    /// IPv6 datagram.
    Ipv6,
    /// ARP message.
    Arp,
    /// Unrecognized EtherType.
    Other(u16),
}

/// Summary of a parsed frame: link/network/transport classification plus
/// the extracted flow key, if the frame is IPv4 TCP/UDP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedPacket {
    /// Source MAC address.
    pub src_mac: MacAddr,
    /// Destination MAC address.
    pub dst_mac: MacAddr,
    /// VLAN identifier of the innermost 802.1Q tag, if the frame was
    /// tagged (the customer tag on QinQ trunks).
    pub vlan: Option<u16>,
    /// Network-layer protocol.
    pub network: NetworkLayer,
    /// IPv4 5-tuple, when the frame is IPv4 with a TCP/UDP payload
    /// (ports are zero for other IPv4 protocols).
    pub flow: Option<FlowKey>,
    /// Transport payload length in bytes, when known.
    pub payload_len: Option<usize>,
}

/// Parses an Ethernet frame into a [`ParsedPacket`] summary.
///
/// Up to `MAX_VLAN_TAGS` stacked 802.1Q/802.1ad tags are traversed, so
/// tagged trunk-port captures classify like their untagged payloads.
/// Parsing stops gracefully at the first unsupported layer: an IPv6 or ARP
/// frame still yields a summary, just without a flow key. Malformed or
/// truncated bytes produce a typed [`Error`], never a panic.
pub fn parse_frame(buf: &[u8]) -> Result<ParsedPacket> {
    let eth = EthernetFrame::parse(buf)?;

    // Walk stacked VLAN tags. Each tag shifts the effective EtherType and
    // payload 4 bytes deeper into the frame; `off` tracks the EtherType
    // position (first tag's TPID sits where the EtherType would be).
    let mut off = crate::ethernet::HEADER_LEN - 2;
    let mut ethertype = eth.ethertype();
    let mut vlan = None;
    for _ in 0..MAX_VLAN_TAGS {
        match ethertype.value() {
            TPID => {
                let tag = VlanTag::parse(&buf[off..])?;
                vlan = Some(tag.vid);
                ethertype = tag.inner_ethertype;
            }
            TPID_QINQ => {
                // 802.1ad service tag: same TCI layout, different TPID.
                if buf.len() < off + TAG_LEN + 2 {
                    return Err(Error::Truncated);
                }
                let tci = u16::from_be_bytes([buf[off + 2], buf[off + 3]]);
                vlan = Some(tci & 0x0fff);
                ethertype = EtherType::from_value(u16::from_be_bytes([buf[off + 4], buf[off + 5]]));
            }
            _ => break,
        }
        off += TAG_LEN;
    }
    let payload = &buf[off + 2..];

    let mut out = ParsedPacket {
        src_mac: eth.src(),
        dst_mac: eth.dst(),
        vlan,
        network: match ethertype {
            EtherType::Ipv4 => NetworkLayer::Ipv4,
            EtherType::Ipv6 => NetworkLayer::Ipv6,
            EtherType::Arp => NetworkLayer::Arp,
            EtherType::Other(v) => NetworkLayer::Other(v),
        },
        flow: None,
        payload_len: None,
    };
    if out.network != NetworkLayer::Ipv4 {
        return Ok(out);
    }
    let ip = Ipv4Header::parse(payload)?;
    let proto = Protocol::from_number(ip.protocol());
    match proto {
        Protocol::Tcp => {
            let t = TcpHeader::parse(ip.payload())?;
            out.flow = Some(FlowKey {
                src_ip: ip.src(),
                dst_ip: ip.dst(),
                src_port: t.src_port(),
                dst_port: t.dst_port(),
                proto,
            });
            out.payload_len = Some(t.payload().len());
        }
        Protocol::Udp => {
            let u = UdpHeader::parse(ip.payload())?;
            out.flow = Some(FlowKey {
                src_ip: ip.src(),
                dst_ip: ip.dst(),
                src_port: u.src_port(),
                dst_port: u.dst_port(),
                proto,
            });
            out.payload_len = Some(u.payload().len());
        }
        Protocol::Other(_) => {
            out.flow = Some(FlowKey {
                src_ip: ip.src(),
                dst_ip: ip.dst(),
                src_port: 0,
                dst_port: 0,
                proto,
            });
            out.payload_len = Some(ip.payload().len());
        }
    }
    Ok(out)
}

/// Extracts just the IPv4 5-tuple from a frame, skipping everything the
/// flow-analytics hot path does not need (MACs, checksum math, payload
/// views).
///
/// Traverses up to `MAX_VLAN_TAGS` stacked 802.1Q/802.1ad tags, then
/// reads the 5-tuple straight out of the IPv4/transport headers with
/// nothing but bounds checks. Returns `None` for anything that is not a
/// well-formed IPv4 frame — never panics, regardless of input bytes.
pub fn flow_of(buf: &[u8]) -> Option<FlowKey> {
    if buf.len() < crate::ethernet::HEADER_LEN {
        return None;
    }
    let mut off = crate::ethernet::HEADER_LEN - 2;
    let mut ethertype = u16::from_be_bytes([buf[off], buf[off + 1]]);
    for _ in 0..MAX_VLAN_TAGS {
        if ethertype != TPID && ethertype != TPID_QINQ {
            break;
        }
        off += TAG_LEN;
        if buf.len() < off + 2 {
            return None;
        }
        ethertype = u16::from_be_bytes([buf[off], buf[off + 1]]);
    }
    if ethertype != 0x0800 {
        return None;
    }
    let ip = &buf[off + 2..];
    if ip.len() < crate::ipv4::MIN_HEADER_LEN || ip[0] >> 4 != 4 {
        return None;
    }
    let header_len = usize::from(ip[0] & 0x0f) * 4;
    let total_len = usize::from(u16::from_be_bytes([ip[2], ip[3]]));
    if header_len < crate::ipv4::MIN_HEADER_LEN || total_len < header_len || total_len > ip.len() {
        return None;
    }
    let proto = ip[9];
    let src_ip = Ipv4Addr::new(ip[12], ip[13], ip[14], ip[15]);
    let dst_ip = Ipv4Addr::new(ip[16], ip[17], ip[18], ip[19]);
    let (src_port, dst_port) = match proto {
        // TCP needs a 20-byte header, UDP an 8-byte one; the ports are the
        // first four bytes of either.
        6 if total_len >= header_len + 20 => (
            u16::from_be_bytes([ip[header_len], ip[header_len + 1]]),
            u16::from_be_bytes([ip[header_len + 2], ip[header_len + 3]]),
        ),
        17 if total_len >= header_len + 8 => (
            u16::from_be_bytes([ip[header_len], ip[header_len + 1]]),
            u16::from_be_bytes([ip[header_len + 2], ip[header_len + 3]]),
        ),
        6 | 17 => return None,
        _ => (0, 0),
    };
    Some(FlowKey {
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        proto: Protocol::from_number(proto),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacketBuilder;
    use std::net::Ipv4Addr;

    #[test]
    fn parses_udp_flow() {
        let flow = FlowKey::udp(
            Ipv4Addr::new(131, 225, 2, 3),
            7000,
            Ipv4Addr::new(10, 1, 2, 3),
            8000,
        );
        let mut b = PacketBuilder::new();
        let f = b.build(&flow, 128).unwrap();
        let p = parse_frame(&f).unwrap();
        assert_eq!(p.network, NetworkLayer::Ipv4);
        assert_eq!(p.flow, Some(flow));
        assert_eq!(p.vlan, None);
        // 128 - 14 (eth) - 20 (ip) - 8 (udp)
        assert_eq!(p.payload_len, Some(86));
    }

    #[test]
    fn parses_tcp_flow() {
        let flow = FlowKey::tcp(
            Ipv4Addr::new(172, 16, 0, 1),
            1,
            Ipv4Addr::new(172, 16, 0, 2),
            2,
        );
        let mut b = PacketBuilder::new();
        let f = b.build(&flow, 64).unwrap();
        let p = parse_frame(&f).unwrap();
        assert_eq!(p.flow, Some(flow));
    }

    #[test]
    fn non_ipv4_yields_no_flow() {
        let mut buf = [0u8; 60];
        crate::ethernet::emit(&mut buf, MacAddr([0; 6]), MacAddr([1; 6]), EtherType::Arp).unwrap();
        let p = parse_frame(&buf).unwrap();
        assert_eq!(p.network, NetworkLayer::Arp);
        assert_eq!(p.flow, None);
    }

    #[test]
    fn truncated_frame_is_an_error() {
        assert!(parse_frame(&[0u8; 5]).is_err());
    }

    #[test]
    fn vlan_tagged_frame_classifies_like_untagged() {
        let flow = FlowKey::udp(
            Ipv4Addr::new(131, 225, 2, 3),
            7000,
            Ipv4Addr::new(10, 1, 2, 3),
            8000,
        );
        let mut b = PacketBuilder::new();
        let f = b.build(&flow, 128).unwrap();
        let tagged = crate::vlan::tag_frame(&f, 3, false, 42).unwrap();
        let p = parse_frame(&tagged).unwrap();
        assert_eq!(p.network, NetworkLayer::Ipv4);
        assert_eq!(p.flow, Some(flow));
        assert_eq!(p.vlan, Some(42));
        assert_eq!(flow_of(&tagged), Some(flow));
    }

    #[test]
    fn qinq_double_tagged_frame_traverses_both_tags() {
        let flow = FlowKey::tcp(
            Ipv4Addr::new(172, 16, 0, 1),
            1,
            Ipv4Addr::new(172, 16, 0, 2),
            2,
        );
        let mut b = PacketBuilder::new();
        let f = b.build(&flow, 96).unwrap();
        // Inner customer tag (0x8100), then outer service tag (0x88a8).
        let inner = crate::vlan::tag_frame(&f, 0, false, 7).unwrap();
        let mut outer = crate::vlan::tag_frame(&inner, 0, false, 100).unwrap();
        outer[12..14].copy_from_slice(&TPID_QINQ.to_be_bytes());
        let p = parse_frame(&outer).unwrap();
        assert_eq!(p.flow, Some(flow));
        // Innermost tag wins: the customer VID.
        assert_eq!(p.vlan, Some(7));
        assert_eq!(flow_of(&outer), Some(flow));
    }

    #[test]
    fn flow_of_matches_parse_frame() {
        let mut b = PacketBuilder::new();
        for (flow, len) in [
            (
                FlowKey::udp(Ipv4Addr::new(1, 2, 3, 4), 10, Ipv4Addr::new(5, 6, 7, 8), 20),
                60,
            ),
            (
                FlowKey::tcp(
                    Ipv4Addr::new(131, 225, 0, 9),
                    443,
                    Ipv4Addr::new(9, 8, 7, 6),
                    55000,
                ),
                1500,
            ),
        ] {
            let f = b.build(&flow, len).unwrap();
            assert_eq!(flow_of(&f), parse_frame(&f).unwrap().flow);
        }
    }

    #[test]
    fn flow_of_rejects_garbage() {
        assert_eq!(flow_of(&[]), None);
        assert_eq!(flow_of(&[0u8; 13]), None);
        assert_eq!(flow_of(&[0xffu8; 64]), None);
    }
}
