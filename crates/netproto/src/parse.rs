//! One-shot frame classification.

use crate::ethernet::{EtherType, EthernetFrame, MacAddr};
use crate::flow::{FlowKey, Protocol};
use crate::ipv4::Ipv4Header;
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;
use crate::Result;

/// Network-layer classification of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkLayer {
    /// IPv4 datagram.
    Ipv4,
    /// IPv6 datagram.
    Ipv6,
    /// ARP message.
    Arp,
    /// Unrecognized EtherType.
    Other(u16),
}

/// Summary of a parsed frame: link/network/transport classification plus
/// the extracted flow key, if the frame is IPv4 TCP/UDP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedPacket {
    /// Source MAC address.
    pub src_mac: MacAddr,
    /// Destination MAC address.
    pub dst_mac: MacAddr,
    /// Network-layer protocol.
    pub network: NetworkLayer,
    /// IPv4 5-tuple, when the frame is IPv4 with a TCP/UDP payload
    /// (ports are zero for other IPv4 protocols).
    pub flow: Option<FlowKey>,
    /// Transport payload length in bytes, when known.
    pub payload_len: Option<usize>,
}

/// Parses an Ethernet frame into a [`ParsedPacket`] summary.
///
/// Parsing stops gracefully at the first unsupported layer: an IPv6 or ARP
/// frame still yields a summary, just without a flow key.
pub fn parse_frame(buf: &[u8]) -> Result<ParsedPacket> {
    let eth = EthernetFrame::parse(buf)?;
    let mut out = ParsedPacket {
        src_mac: eth.src(),
        dst_mac: eth.dst(),
        network: match eth.ethertype() {
            EtherType::Ipv4 => NetworkLayer::Ipv4,
            EtherType::Ipv6 => NetworkLayer::Ipv6,
            EtherType::Arp => NetworkLayer::Arp,
            EtherType::Other(v) => NetworkLayer::Other(v),
        },
        flow: None,
        payload_len: None,
    };
    if out.network != NetworkLayer::Ipv4 {
        return Ok(out);
    }
    let ip = Ipv4Header::parse(eth.payload())?;
    let proto = Protocol::from_number(ip.protocol());
    match proto {
        Protocol::Tcp => {
            let t = TcpHeader::parse(ip.payload())?;
            out.flow = Some(FlowKey {
                src_ip: ip.src(),
                dst_ip: ip.dst(),
                src_port: t.src_port(),
                dst_port: t.dst_port(),
                proto,
            });
            out.payload_len = Some(t.payload().len());
        }
        Protocol::Udp => {
            let u = UdpHeader::parse(ip.payload())?;
            out.flow = Some(FlowKey {
                src_ip: ip.src(),
                dst_ip: ip.dst(),
                src_port: u.src_port(),
                dst_port: u.dst_port(),
                proto,
            });
            out.payload_len = Some(u.payload().len());
        }
        Protocol::Other(_) => {
            out.flow = Some(FlowKey {
                src_ip: ip.src(),
                dst_ip: ip.dst(),
                src_port: 0,
                dst_port: 0,
                proto,
            });
            out.payload_len = Some(ip.payload().len());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacketBuilder;
    use std::net::Ipv4Addr;

    #[test]
    fn parses_udp_flow() {
        let flow = FlowKey::udp(
            Ipv4Addr::new(131, 225, 2, 3),
            7000,
            Ipv4Addr::new(10, 1, 2, 3),
            8000,
        );
        let mut b = PacketBuilder::new();
        let f = b.build(&flow, 128).unwrap();
        let p = parse_frame(&f).unwrap();
        assert_eq!(p.network, NetworkLayer::Ipv4);
        assert_eq!(p.flow, Some(flow));
        // 128 - 14 (eth) - 20 (ip) - 8 (udp)
        assert_eq!(p.payload_len, Some(86));
    }

    #[test]
    fn parses_tcp_flow() {
        let flow = FlowKey::tcp(
            Ipv4Addr::new(172, 16, 0, 1),
            1,
            Ipv4Addr::new(172, 16, 0, 2),
            2,
        );
        let mut b = PacketBuilder::new();
        let f = b.build(&flow, 64).unwrap();
        let p = parse_frame(&f).unwrap();
        assert_eq!(p.flow, Some(flow));
    }

    #[test]
    fn non_ipv4_yields_no_flow() {
        let mut buf = [0u8; 60];
        crate::ethernet::emit(&mut buf, MacAddr([0; 6]), MacAddr([1; 6]), EtherType::Arp).unwrap();
        let p = parse_frame(&buf).unwrap();
        assert_eq!(p.network, NetworkLayer::Arp);
        assert_eq!(p.flow, None);
    }

    #[test]
    fn truncated_frame_is_an_error() {
        assert!(parse_frame(&[0u8; 5]).is_err());
    }
}
