//! IPv6 fixed-header view and emitter.
//!
//! Present for protocol completeness (the BPF compiler understands `ip6`);
//! the paper's experiments are IPv4-only.

use crate::{Error, Result};
use std::net::Ipv6Addr;

/// Fixed IPv6 header length.
pub const HEADER_LEN: usize = 40;

/// Immutable view of an IPv6 fixed header plus payload.
#[derive(Debug, Clone, Copy)]
pub struct Ipv6Header<'a> {
    buf: &'a [u8],
}

impl<'a> Ipv6Header<'a> {
    /// Parses an IPv6 packet, validating the version nibble.
    pub fn parse(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if buf[0] >> 4 != 6 {
            return Err(Error::Malformed);
        }
        Ok(Ipv6Header { buf })
    }

    /// Payload length field.
    pub fn payload_len(&self) -> u16 {
        u16::from_be_bytes([self.buf[4], self.buf[5]])
    }

    /// Next-header (payload protocol) field.
    pub fn next_header(&self) -> u8 {
        self.buf[6]
    }

    /// Hop-limit field.
    pub fn hop_limit(&self) -> u8 {
        self.buf[7]
    }

    /// Source address.
    pub fn src(&self) -> Ipv6Addr {
        let mut o = [0u8; 16];
        o.copy_from_slice(&self.buf[8..24]);
        Ipv6Addr::from(o)
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv6Addr {
        let mut o = [0u8; 16];
        o.copy_from_slice(&self.buf[24..40]);
        Ipv6Addr::from(o)
    }

    /// Payload slice, bounded by the payload-length field.
    pub fn payload(&self) -> &'a [u8] {
        let end = (HEADER_LEN + usize::from(self.payload_len())).min(self.buf.len());
        &self.buf[HEADER_LEN..end]
    }
}

/// Field values for emitting an IPv6 fixed header.
#[derive(Debug, Clone, Copy)]
pub struct Ipv6Fields {
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// Next-header protocol number.
    pub next_header: u8,
    /// Payload length in bytes.
    pub payload_len: u16,
    /// Hop limit; 64 is a conventional default.
    pub hop_limit: u8,
}

/// Emits a 40-byte IPv6 header at the front of `buf`.
pub fn emit(buf: &mut [u8], f: &Ipv6Fields) -> Result<()> {
    if buf.len() < HEADER_LEN {
        return Err(Error::Truncated);
    }
    buf[0] = 0x60;
    buf[1] = 0;
    buf[2] = 0;
    buf[3] = 0;
    buf[4..6].copy_from_slice(&f.payload_len.to_be_bytes());
    buf[6] = f.next_header;
    buf[7] = f.hop_limit;
    buf[8..24].copy_from_slice(&f.src.octets());
    buf[24..40].copy_from_slice(&f.dst.octets());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_roundtrip() {
        let mut buf = [0u8; 48];
        let f = Ipv6Fields {
            src: "2001:db8::1".parse().unwrap(),
            dst: "2001:db8::2".parse().unwrap(),
            next_header: 17,
            payload_len: 8,
            hop_limit: 64,
        };
        emit(&mut buf, &f).unwrap();
        let h = Ipv6Header::parse(&buf).unwrap();
        assert_eq!(h.src(), f.src);
        assert_eq!(h.dst(), f.dst);
        assert_eq!(h.next_header(), 17);
        assert_eq!(h.payload_len(), 8);
        assert_eq!(h.hop_limit(), 64);
        assert_eq!(h.payload().len(), 8);
    }

    #[test]
    fn parse_rejects_v4() {
        let buf = [0x45u8; 40];
        assert_eq!(Ipv6Header::parse(&buf).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn parse_rejects_truncated() {
        assert_eq!(
            Ipv6Header::parse(&[0x60; 39]).unwrap_err(),
            Error::Truncated
        );
    }
}
