//! IEEE 802.1Q VLAN tag view and emitter.
//!
//! Border-router capture ports commonly sit on trunk links, so tagged
//! frames show up in real captures. The tag sits between the Ethernet
//! source MAC and the (inner) EtherType.

use crate::ethernet::EtherType;
use crate::{Error, Result};

/// Length of one 802.1Q tag (TPID + TCI).
pub const TAG_LEN: usize = 4;

/// The 802.1Q Tag Protocol Identifier.
pub const TPID: u16 = 0x8100;

/// A parsed 802.1Q tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlanTag {
    /// Priority code point (0–7).
    pub pcp: u8,
    /// Drop-eligible indicator.
    pub dei: bool,
    /// VLAN identifier (0–4095; 0 = priority tag, 4095 reserved).
    pub vid: u16,
    /// The EtherType of the encapsulated payload.
    pub inner_ethertype: EtherType,
}

impl VlanTag {
    /// Parses the 4 tag bytes that follow the outer TPID position (i.e.
    /// `buf` starts at the TPID).
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < TAG_LEN + 2 {
            return Err(Error::Truncated);
        }
        let tpid = u16::from_be_bytes([buf[0], buf[1]]);
        if tpid != TPID {
            return Err(Error::Unsupported);
        }
        let tci = u16::from_be_bytes([buf[2], buf[3]]);
        Ok(VlanTag {
            pcp: (tci >> 13) as u8,
            dei: tci & 0x1000 != 0,
            vid: tci & 0x0fff,
            inner_ethertype: EtherType::from_value(u16::from_be_bytes([buf[4], buf[5]])),
        })
    }

    /// The 16-bit tag control information field.
    pub fn tci(&self) -> u16 {
        (u16::from(self.pcp) << 13) | (u16::from(self.dei) << 12) | self.vid
    }
}

/// Inserts an 802.1Q tag into an untagged Ethernet frame, returning the
/// tagged frame (4 bytes longer).
pub fn tag_frame(frame: &[u8], pcp: u8, dei: bool, vid: u16) -> Result<Vec<u8>> {
    if frame.len() < 14 {
        return Err(Error::Truncated);
    }
    if pcp > 7 || vid > 4095 {
        return Err(Error::Malformed);
    }
    let mut out = Vec::with_capacity(frame.len() + TAG_LEN);
    out.extend_from_slice(&frame[..12]);
    out.extend_from_slice(&TPID.to_be_bytes());
    let tci = (u16::from(pcp) << 13) | (u16::from(dei) << 12) | vid;
    out.extend_from_slice(&tci.to_be_bytes());
    out.extend_from_slice(&frame[12..]);
    Ok(out)
}

/// Strips the outer 802.1Q tag from a tagged frame, returning the
/// untagged frame and the removed tag.
pub fn untag_frame(frame: &[u8]) -> Result<(Vec<u8>, VlanTag)> {
    if frame.len() < 14 + TAG_LEN {
        return Err(Error::Truncated);
    }
    let tag = VlanTag::parse(&frame[12..])?;
    let mut out = Vec::with_capacity(frame.len() - TAG_LEN);
    out.extend_from_slice(&frame[..12]);
    out.extend_from_slice(&frame[12 + TAG_LEN..]);
    Ok((out, tag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowKey, PacketBuilder};
    use std::net::Ipv4Addr;

    fn frame() -> Vec<u8> {
        PacketBuilder::new()
            .build(
                &FlowKey::udp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 2),
                100,
            )
            .unwrap()
    }

    #[test]
    fn tag_untag_roundtrip() {
        let original = frame();
        let tagged = tag_frame(&original, 5, true, 131).unwrap();
        assert_eq!(tagged.len(), original.len() + 4);
        // The tagged frame's outer ethertype is the TPID.
        assert_eq!(u16::from_be_bytes([tagged[12], tagged[13]]), TPID);
        let (untagged, tag) = untag_frame(&tagged).unwrap();
        assert_eq!(untagged, original);
        assert_eq!(tag.pcp, 5);
        assert!(tag.dei);
        assert_eq!(tag.vid, 131);
        assert_eq!(tag.inner_ethertype, EtherType::Ipv4);
    }

    #[test]
    fn tci_packing() {
        let tag = VlanTag {
            pcp: 7,
            dei: false,
            vid: 4095,
            inner_ethertype: EtherType::Ipv4,
        };
        assert_eq!(tag.tci(), 0xEFFF);
    }

    #[test]
    fn rejects_invalid_fields() {
        let f = frame();
        assert!(tag_frame(&f, 8, false, 1).is_err());
        assert!(tag_frame(&f, 0, false, 4096).is_err());
        assert!(tag_frame(&[0u8; 10], 0, false, 1).is_err());
    }

    #[test]
    fn untag_rejects_untagged() {
        assert_eq!(untag_frame(&frame()).unwrap_err(), Error::Unsupported);
    }

    #[test]
    fn inner_payload_still_parses_after_untag() {
        let tagged = tag_frame(&frame(), 0, false, 42).unwrap();
        let (untagged, _) = untag_frame(&tagged).unwrap();
        let parsed = crate::parse_frame(&untagged).unwrap();
        assert!(parsed.flow.is_some());
    }
}
