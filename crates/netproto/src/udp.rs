//! UDP header view and emitter.

use crate::checksum::{self, Checksum};
use crate::{Error, Result};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// Immutable view of a UDP datagram.
#[derive(Debug, Clone, Copy)]
pub struct UdpHeader<'a> {
    buf: &'a [u8],
}

impl<'a> UdpHeader<'a> {
    /// Parses a UDP datagram, validating the length field.
    pub fn parse(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let len = usize::from(u16::from_be_bytes([buf[4], buf[5]]));
        if len < HEADER_LEN || len > buf.len() {
            return Err(Error::Malformed);
        }
        Ok(UdpHeader { buf })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Length field (header + payload).
    pub fn len(&self) -> u16 {
        u16::from_be_bytes([self.buf[4], self.buf[5]])
    }

    /// Whether the datagram carries no payload.
    pub fn is_empty(&self) -> bool {
        self.len() == HEADER_LEN as u16
    }

    /// Stored checksum (0 means "not computed" in IPv4).
    pub fn stored_checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[6], self.buf[7]])
    }

    /// Payload slice.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[HEADER_LEN..usize::from(self.len())]
    }
}

/// Emits a UDP header at the front of `buf`; the payload must already be in
/// place at `buf[8..8+payload_len]`. The checksum is computed over the IPv4
/// pseudo-header.
pub fn emit(
    buf: &mut [u8],
    src: [u8; 4],
    dst: [u8; 4],
    src_port: u16,
    dst_port: u16,
    payload_len: u16,
) -> Result<()> {
    let len = HEADER_LEN as u16 + payload_len;
    if buf.len() < usize::from(len) {
        return Err(Error::Truncated);
    }
    buf[0..2].copy_from_slice(&src_port.to_be_bytes());
    buf[2..4].copy_from_slice(&dst_port.to_be_bytes());
    buf[4..6].copy_from_slice(&len.to_be_bytes());
    buf[6] = 0;
    buf[7] = 0;
    let mut c: Checksum = checksum::pseudo_header_v4(src, dst, 17, len);
    c.add_bytes(&buf[..usize::from(len)]);
    let mut csum = c.finish();
    // Per RFC 768 a computed zero checksum is transmitted as all ones.
    if csum == 0 {
        csum = 0xffff;
    }
    buf[6..8].copy_from_slice(&csum.to_be_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_roundtrip() {
        let mut buf = [0u8; 12];
        buf[8..12].copy_from_slice(b"ping");
        emit(&mut buf, [10, 0, 0, 1], [10, 0, 0, 2], 1234, 5353, 4).unwrap();
        let u = UdpHeader::parse(&buf).unwrap();
        assert_eq!(u.src_port(), 1234);
        assert_eq!(u.dst_port(), 5353);
        assert_eq!(u.len(), 12);
        assert!(!u.is_empty());
        assert_eq!(u.payload(), b"ping");
        assert_ne!(u.stored_checksum(), 0);
    }

    #[test]
    fn checksum_validates_against_pseudo_header() {
        let mut buf = [0u8; 12];
        buf[8..12].copy_from_slice(b"ping");
        emit(&mut buf, [10, 0, 0, 1], [10, 0, 0, 2], 1234, 5353, 4).unwrap();
        let mut c = checksum::pseudo_header_v4([10, 0, 0, 1], [10, 0, 0, 2], 17, 12);
        c.add_bytes(&buf);
        assert_eq!(c.finish(), 0);
    }

    #[test]
    fn parse_rejects_bad_length_field() {
        let mut buf = [0u8; 12];
        emit(&mut buf, [1, 1, 1, 1], [2, 2, 2, 2], 1, 2, 4).unwrap();
        buf[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(UdpHeader::parse(&buf).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn parse_rejects_truncated() {
        assert_eq!(UdpHeader::parse(&[0u8; 7]).unwrap_err(), Error::Truncated);
    }
}
