//! ARP (IPv4-over-Ethernet) message view and emitter.
//!
//! A promiscuous capture port sees ARP chatter alongside IP traffic; the
//! BPF compiler supports an `arp` primitive and the parser classifies
//! ARP frames, so the protocol layer carries a real implementation.

use crate::ethernet::MacAddr;
use crate::{Error, Result};
use std::net::Ipv4Addr;

/// Length of an IPv4-over-Ethernet ARP message.
pub const MESSAGE_LEN: usize = 28;

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Who-has (1).
    Request,
    /// Is-at (2).
    Reply,
    /// Any other opcode, preserved.
    Other(u16),
}

impl Operation {
    /// The wire opcode.
    pub fn value(self) -> u16 {
        match self {
            Operation::Request => 1,
            Operation::Reply => 2,
            Operation::Other(v) => v,
        }
    }

    /// Classifies a wire opcode.
    pub fn from_value(v: u16) -> Self {
        match v {
            1 => Operation::Request,
            2 => Operation::Reply,
            other => Operation::Other(other),
        }
    }
}

/// Immutable view of an IPv4-over-Ethernet ARP message.
#[derive(Debug, Clone, Copy)]
pub struct ArpMessage<'a> {
    buf: &'a [u8],
}

impl<'a> ArpMessage<'a> {
    /// Parses an ARP message, validating the hardware/protocol types for
    /// the Ethernet/IPv4 combination.
    pub fn parse(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < MESSAGE_LEN {
            return Err(Error::Truncated);
        }
        let htype = u16::from_be_bytes([buf[0], buf[1]]);
        let ptype = u16::from_be_bytes([buf[2], buf[3]]);
        if htype != 1 || ptype != 0x0800 || buf[4] != 6 || buf[5] != 4 {
            return Err(Error::Unsupported);
        }
        Ok(ArpMessage { buf })
    }

    /// Operation (request/reply).
    pub fn operation(&self) -> Operation {
        Operation::from_value(u16::from_be_bytes([self.buf[6], self.buf[7]]))
    }

    /// Sender hardware address.
    pub fn sender_mac(&self) -> MacAddr {
        let mut m = [0u8; 6];
        m.copy_from_slice(&self.buf[8..14]);
        MacAddr(m)
    }

    /// Sender protocol address.
    pub fn sender_ip(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.buf[14], self.buf[15], self.buf[16], self.buf[17])
    }

    /// Target hardware address (zero in requests).
    pub fn target_mac(&self) -> MacAddr {
        let mut m = [0u8; 6];
        m.copy_from_slice(&self.buf[18..24]);
        MacAddr(m)
    }

    /// Target protocol address.
    pub fn target_ip(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.buf[24], self.buf[25], self.buf[26], self.buf[27])
    }
}

/// Field values for emitting an ARP message.
#[derive(Debug, Clone, Copy)]
pub struct ArpFields {
    /// Operation.
    pub operation: Operation,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero for requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

/// Emits a 28-byte IPv4-over-Ethernet ARP message at the front of `buf`.
pub fn emit(buf: &mut [u8], f: &ArpFields) -> Result<()> {
    if buf.len() < MESSAGE_LEN {
        return Err(Error::Truncated);
    }
    buf[0..2].copy_from_slice(&1u16.to_be_bytes()); // Ethernet
    buf[2..4].copy_from_slice(&0x0800u16.to_be_bytes()); // IPv4
    buf[4] = 6;
    buf[5] = 4;
    buf[6..8].copy_from_slice(&f.operation.value().to_be_bytes());
    buf[8..14].copy_from_slice(&f.sender_mac.0);
    buf[14..18].copy_from_slice(&f.sender_ip.octets());
    buf[18..24].copy_from_slice(&f.target_mac.0);
    buf[24..28].copy_from_slice(&f.target_ip.octets());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> ArpFields {
        ArpFields {
            operation: Operation::Request,
            sender_mac: MacAddr([2, 0, 0, 0, 0, 1]),
            sender_ip: Ipv4Addr::new(131, 225, 2, 1),
            target_mac: MacAddr([0; 6]),
            target_ip: Ipv4Addr::new(131, 225, 2, 254),
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let mut buf = [0u8; 28];
        emit(&mut buf, &fields()).unwrap();
        let a = ArpMessage::parse(&buf).unwrap();
        assert_eq!(a.operation(), Operation::Request);
        assert_eq!(a.sender_mac(), MacAddr([2, 0, 0, 0, 0, 1]));
        assert_eq!(a.sender_ip(), Ipv4Addr::new(131, 225, 2, 1));
        assert_eq!(a.target_ip(), Ipv4Addr::new(131, 225, 2, 254));
    }

    #[test]
    fn reply_roundtrip() {
        let mut buf = [0u8; 28];
        let mut f = fields();
        f.operation = Operation::Reply;
        f.target_mac = MacAddr([2, 0, 0, 0, 0, 2]);
        emit(&mut buf, &f).unwrap();
        let a = ArpMessage::parse(&buf).unwrap();
        assert_eq!(a.operation(), Operation::Reply);
        assert_eq!(a.target_mac(), MacAddr([2, 0, 0, 0, 0, 2]));
    }

    #[test]
    fn rejects_non_ethernet_ipv4() {
        let mut buf = [0u8; 28];
        emit(&mut buf, &fields()).unwrap();
        buf[1] = 6; // token ring
        assert_eq!(ArpMessage::parse(&buf).unwrap_err(), Error::Unsupported);
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(ArpMessage::parse(&[0u8; 27]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn opcode_roundtrip() {
        for v in [1u16, 2, 3, 9] {
            assert_eq!(Operation::from_value(v).value(), v);
        }
    }
}
