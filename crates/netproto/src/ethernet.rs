//! Ethernet II frame view.

use crate::{Error, Result};

/// Length of an Ethernet II header (dst MAC, src MAC, EtherType).
pub const HEADER_LEN: usize = 14;

/// Minimum Ethernet frame length on the wire, excluding the FCS.
pub const MIN_FRAME_LEN: usize = 60;

/// Well-known EtherType values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// IPv6 (0x86DD).
    Ipv6,
    /// Anything else.
    Other(u16),
}

impl EtherType {
    /// The raw 16-bit EtherType value.
    pub fn value(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86DD,
            EtherType::Other(v) => v,
        }
    }

    /// Classifies a raw EtherType value.
    pub fn from_value(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86DD => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

/// A MAC (EUI-48) address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Whether this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Whether the group (multicast) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// Immutable view of an Ethernet II frame.
#[derive(Debug, Clone, Copy)]
pub struct EthernetFrame<'a> {
    buf: &'a [u8],
}

impl<'a> EthernetFrame<'a> {
    /// Wraps a byte slice, checking it holds at least a full header.
    pub fn parse(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(EthernetFrame { buf })
    }

    /// Destination MAC address.
    pub fn dst(&self) -> MacAddr {
        let mut m = [0u8; 6];
        m.copy_from_slice(&self.buf[0..6]);
        MacAddr(m)
    }

    /// Source MAC address.
    pub fn src(&self) -> MacAddr {
        let mut m = [0u8; 6];
        m.copy_from_slice(&self.buf[6..12]);
        MacAddr(m)
    }

    /// EtherType field.
    pub fn ethertype(&self) -> EtherType {
        EtherType::from_value(u16::from_be_bytes([self.buf[12], self.buf[13]]))
    }

    /// The frame payload (everything after the header).
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[HEADER_LEN..]
    }
}

/// Writes an Ethernet header into `buf` and returns the payload remainder.
pub fn emit(buf: &mut [u8], dst: MacAddr, src: MacAddr, ethertype: EtherType) -> Result<()> {
    if buf.len() < HEADER_LEN {
        return Err(Error::Truncated);
    }
    buf[0..6].copy_from_slice(&dst.0);
    buf[6..12].copy_from_slice(&src.0);
    buf[12..14].copy_from_slice(&ethertype.value().to_be_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_short_buffer() {
        assert_eq!(
            EthernetFrame::parse(&[0u8; 13]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn emit_parse_roundtrip() {
        let mut buf = [0u8; 20];
        let dst = MacAddr([1, 2, 3, 4, 5, 6]);
        let src = MacAddr([7, 8, 9, 10, 11, 12]);
        emit(&mut buf, dst, src, EtherType::Ipv4).unwrap();
        let f = EthernetFrame::parse(&buf).unwrap();
        assert_eq!(f.dst(), dst);
        assert_eq!(f.src(), src);
        assert_eq!(f.ethertype(), EtherType::Ipv4);
        assert_eq!(f.payload().len(), 6);
    }

    #[test]
    fn ethertype_roundtrip() {
        for v in [0x0800u16, 0x0806, 0x86DD, 0x1234] {
            assert_eq!(EtherType::from_value(v).value(), v);
        }
    }

    #[test]
    fn broadcast_and_multicast_bits() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
        assert!(!MacAddr([0x02, 0, 0, 0, 0, 1]).is_multicast());
    }

    #[test]
    fn mac_display() {
        assert_eq!(
            MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]).to_string(),
            "de:ad:be:ef:00:01"
        );
    }
}
