//! Renders flows into wire-format Ethernet frames.
//!
//! The traffic generator describes packets abstractly as
//! ([`FlowKey`], length); this module turns that description into real
//! bytes so the BPF filter, the pcap layer and the examples operate on
//! genuine packets rather than stand-ins.

use crate::ethernet::{self, EtherType, MacAddr};
use crate::flow::{FlowKey, Protocol};
use crate::ipv4::{self, Ipv4Fields};
use crate::tcp::{self, TcpFields, TcpFlags};
use crate::udp;
use crate::{Error, Result};

/// Builds Ethernet/IPv4/{TCP,UDP} frames from flow keys.
///
/// The builder owns default MAC addresses and a rolling IP identification
/// counter; one builder per traffic source keeps idents locally unique.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    /// Source MAC used for emitted frames.
    pub src_mac: MacAddr,
    /// Destination MAC used for emitted frames.
    pub dst_mac: MacAddr,
    ident: u16,
}

impl Default for PacketBuilder {
    fn default() -> Self {
        PacketBuilder {
            src_mac: MacAddr([0x02, 0x57, 0x43, 0x00, 0x00, 0x01]),
            dst_mac: MacAddr([0x02, 0x57, 0x43, 0x00, 0x00, 0x02]),
            ident: 1,
        }
    }
}

impl PacketBuilder {
    /// Creates a builder with the default locally-administered MACs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a frame for `flow` with total on-wire length `frame_len`
    /// (Ethernet header included, FCS excluded — the common pcap
    /// convention). The payload is zero-filled.
    ///
    /// `frame_len` is clamped up to the minimum length a well-formed
    /// frame of that protocol requires (64-byte experiment packets always
    /// fit: 14 + 20 + 20 = 54 for TCP, 42 for UDP).
    pub fn build(&mut self, flow: &FlowKey, frame_len: usize) -> Result<Vec<u8>> {
        let transport_hdr = match flow.proto {
            Protocol::Tcp => tcp::MIN_HEADER_LEN,
            Protocol::Udp => udp::HEADER_LEN,
            Protocol::Other(_) => 0,
        };
        let min_len = ethernet::HEADER_LEN + ipv4::MIN_HEADER_LEN + transport_hdr;
        let frame_len = frame_len.max(min_len);
        let mut buf = vec![0u8; frame_len];

        ethernet::emit(&mut buf, self.dst_mac, self.src_mac, EtherType::Ipv4)?;

        let ip_payload_len = (frame_len - ethernet::HEADER_LEN - ipv4::MIN_HEADER_LEN) as u16;
        let ident = self.next_ident();
        ipv4::emit(
            &mut buf[ethernet::HEADER_LEN..],
            &Ipv4Fields {
                src: flow.src_ip,
                dst: flow.dst_ip,
                protocol: flow.proto.number(),
                payload_len: ip_payload_len,
                ttl: 64,
                ident,
            },
        )?;

        let l4 = &mut buf[ethernet::HEADER_LEN + ipv4::MIN_HEADER_LEN..];
        match flow.proto {
            Protocol::Udp => {
                let payload = ip_payload_len - udp::HEADER_LEN as u16;
                udp::emit(
                    l4,
                    flow.src_ip.octets(),
                    flow.dst_ip.octets(),
                    flow.src_port,
                    flow.dst_port,
                    payload,
                )?;
            }
            Protocol::Tcp => {
                let payload = ip_payload_len - tcp::MIN_HEADER_LEN as u16;
                tcp::emit(
                    l4,
                    flow.src_ip.octets(),
                    flow.dst_ip.octets(),
                    &TcpFields {
                        src_port: flow.src_port,
                        dst_port: flow.dst_port,
                        seq: u32::from(ident) << 8,
                        ack: 0,
                        flags: TcpFlags::ACK,
                        window: 65535,
                    },
                    payload,
                )?;
            }
            Protocol::Other(_) => {}
        }
        Ok(buf)
    }

    /// Builds a frame and returns it as a [`crate::Packet`].
    pub fn build_packet(
        &mut self,
        ts_ns: u64,
        flow: &FlowKey,
        frame_len: usize,
    ) -> Result<crate::Packet> {
        Ok(crate::Packet::new(ts_ns, self.build(flow, frame_len)?))
    }

    fn next_ident(&mut self) -> u16 {
        let id = self.ident;
        self.ident = self.ident.wrapping_add(1);
        id
    }
}

/// Validation helper: fully checks a frame built by [`PacketBuilder`]
/// (header well-formedness and both checksums). Used by tests and by the
/// failure-injection suite.
pub fn validate_frame(buf: &[u8]) -> Result<()> {
    let eth = ethernet::EthernetFrame::parse(buf)?;
    if eth.ethertype() != EtherType::Ipv4 {
        return Err(Error::Unsupported);
    }
    let ip = ipv4::Ipv4Header::parse(eth.payload())?;
    if !ip.checksum_ok() {
        return Err(Error::Malformed);
    }
    match Protocol::from_number(ip.protocol()) {
        Protocol::Tcp => {
            tcp::TcpHeader::parse(ip.payload())?;
        }
        Protocol::Udp => {
            udp::UdpHeader::parse(ip.payload())?;
        }
        Protocol::Other(_) => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn udp_flow() -> FlowKey {
        FlowKey::udp(
            Ipv4Addr::new(131, 225, 2, 9),
            9000,
            Ipv4Addr::new(198, 51, 100, 7),
            53,
        )
    }

    fn tcp_flow() -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(131, 225, 7, 1),
            41000,
            Ipv4Addr::new(203, 0, 113, 2),
            80,
        )
    }

    #[test]
    fn builds_valid_64b_udp_frame() {
        let mut b = PacketBuilder::new();
        let f = b.build(&udp_flow(), 64).unwrap();
        assert_eq!(f.len(), 64);
        validate_frame(&f).unwrap();
    }

    #[test]
    fn builds_valid_tcp_frame() {
        let mut b = PacketBuilder::new();
        let f = b.build(&tcp_flow(), 1500).unwrap();
        assert_eq!(f.len(), 1500);
        validate_frame(&f).unwrap();
    }

    #[test]
    fn short_request_clamped_to_minimum() {
        let mut b = PacketBuilder::new();
        let f = b.build(&tcp_flow(), 10).unwrap();
        assert_eq!(f.len(), 54); // 14 + 20 + 20
        validate_frame(&f).unwrap();
    }

    #[test]
    fn parsed_fields_match_flow() {
        let mut b = PacketBuilder::new();
        let flow = udp_flow();
        let f = b.build(&flow, 100).unwrap();
        let p = crate::parse::parse_frame(&f).unwrap();
        assert_eq!(p.flow, Some(flow));
    }

    #[test]
    fn idents_increment() {
        let mut b = PacketBuilder::new();
        let f1 = b.build(&udp_flow(), 64).unwrap();
        let f2 = b.build(&udp_flow(), 64).unwrap();
        let ip1 = crate::ipv4::Ipv4Header::parse(&f1[14..]).unwrap();
        let ip2 = crate::ipv4::Ipv4Header::parse(&f2[14..]).unwrap();
        assert_eq!(ip2.ident(), ip1.ident().wrapping_add(1));
    }
}
