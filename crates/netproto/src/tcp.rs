//! TCP header view and emitter.

use crate::checksum::{self, Checksum};
use crate::{Error, Result};

/// Minimum TCP header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// TCP control flags (low 6 bits of byte 13).
///
/// Hand-rolled rather than pulled from a bitflags crate to stay inside the
/// approved dependency list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG flag.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Whether every flag in `other` is set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }
}

impl core::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        self.union(rhs)
    }
}

/// Immutable view of a TCP segment.
#[derive(Debug, Clone, Copy)]
pub struct TcpHeader<'a> {
    buf: &'a [u8],
    header_len: usize,
}

impl<'a> TcpHeader<'a> {
    /// Parses a TCP segment, validating the data-offset field.
    pub fn parse(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < MIN_HEADER_LEN {
            return Err(Error::Truncated);
        }
        let header_len = usize::from(buf[12] >> 4) * 4;
        if header_len < MIN_HEADER_LEN || header_len > buf.len() {
            return Err(Error::Malformed);
        }
        Ok(TcpHeader { buf, header_len })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]])
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> u32 {
        u32::from_be_bytes([self.buf[8], self.buf[9], self.buf[10], self.buf[11]])
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        self.header_len
    }

    /// Control flags.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.buf[13] & 0x3f)
    }

    /// Advertised receive window.
    pub fn window(&self) -> u16 {
        u16::from_be_bytes([self.buf[14], self.buf[15]])
    }

    /// Stored checksum.
    pub fn stored_checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[16], self.buf[17]])
    }

    /// Payload slice (after header and options).
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[self.header_len..]
    }
}

/// Field values for emitting a TCP header (no options).
#[derive(Debug, Clone, Copy)]
pub struct TcpFields {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Advertised window.
    pub window: u16,
}

/// Emits a 20-byte TCP header at the front of `buf`; the payload must
/// already be in place at `buf[20..20+payload_len]`. The checksum covers the
/// IPv4 pseudo-header.
pub fn emit(
    buf: &mut [u8],
    src: [u8; 4],
    dst: [u8; 4],
    f: &TcpFields,
    payload_len: u16,
) -> Result<()> {
    let seg_len = MIN_HEADER_LEN as u16 + payload_len;
    if buf.len() < usize::from(seg_len) {
        return Err(Error::Truncated);
    }
    buf[0..2].copy_from_slice(&f.src_port.to_be_bytes());
    buf[2..4].copy_from_slice(&f.dst_port.to_be_bytes());
    buf[4..8].copy_from_slice(&f.seq.to_be_bytes());
    buf[8..12].copy_from_slice(&f.ack.to_be_bytes());
    buf[12] = 5 << 4; // data offset 5 words
    buf[13] = f.flags.0;
    buf[14..16].copy_from_slice(&f.window.to_be_bytes());
    buf[16] = 0;
    buf[17] = 0;
    buf[18] = 0; // urgent pointer
    buf[19] = 0;
    let mut c: Checksum = checksum::pseudo_header_v4(src, dst, 6, seg_len);
    c.add_bytes(&buf[..usize::from(seg_len)]);
    let csum = c.finish();
    buf[16..18].copy_from_slice(&csum.to_be_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> TcpFields {
        TcpFields {
            src_port: 50000,
            dst_port: 443,
            seq: 0x01020304,
            ack: 0x0a0b0c0d,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 65535,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let mut buf = [0u8; 24];
        buf[20..24].copy_from_slice(b"data");
        emit(&mut buf, [1, 2, 3, 4], [5, 6, 7, 8], &fields(), 4).unwrap();
        let t = TcpHeader::parse(&buf).unwrap();
        assert_eq!(t.src_port(), 50000);
        assert_eq!(t.dst_port(), 443);
        assert_eq!(t.seq(), 0x01020304);
        assert_eq!(t.ack(), 0x0a0b0c0d);
        assert!(t.flags().contains(TcpFlags::ACK));
        assert!(t.flags().contains(TcpFlags::PSH));
        assert!(!t.flags().contains(TcpFlags::SYN));
        assert_eq!(t.window(), 65535);
        assert_eq!(t.payload(), b"data");
    }

    #[test]
    fn checksum_validates_against_pseudo_header() {
        let mut buf = [0u8; 24];
        buf[20..24].copy_from_slice(b"data");
        emit(&mut buf, [1, 2, 3, 4], [5, 6, 7, 8], &fields(), 4).unwrap();
        let mut c = checksum::pseudo_header_v4([1, 2, 3, 4], [5, 6, 7, 8], 6, 24);
        c.add_bytes(&buf);
        assert_eq!(c.finish(), 0);
    }

    #[test]
    fn parse_rejects_bad_data_offset() {
        let mut buf = [0u8; 20];
        emit(&mut buf, [1, 1, 1, 1], [2, 2, 2, 2], &fields(), 0).unwrap();
        buf[12] = 0xf0; // offset 15 words = 60 bytes > buffer
        assert_eq!(TcpHeader::parse(&buf).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn flags_bitor_and_contains() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
    }
}
