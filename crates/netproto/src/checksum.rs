//! Internet checksum (RFC 1071) helpers shared by IPv4, TCP and UDP.

/// Incrementally computes the 16-bit ones'-complement Internet checksum.
///
/// The accumulator keeps the running sum in a `u64`: a `u32` accumulator
/// overflows (panicking in debug builds, folding wrongly in release) once
/// roughly 128 KiB of all-ones bytes have been fed, which jumbo captures
/// and pseudo-header sums over large segments can reach. `u64` holds
/// 2^48 bytes of worst-case input, far beyond any frame. Call
/// [`Checksum::finish`] to fold the end-around carries to fixpoint and
/// complement. Data fed in multiple calls behaves exactly like one
/// contiguous buffer, provided each call except the last passes an even
/// number of bytes (header fields are naturally even-sized).
#[derive(Debug, Default, Clone, Copy)]
pub struct Checksum {
    sum: u64,
}

impl Checksum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds a byte slice into the checksum.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u64::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u64::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Feeds a big-endian 16-bit word.
    pub fn add_u16(&mut self, v: u16) {
        self.sum += u64::from(v);
    }

    /// Feeds a big-endian 32-bit word (as two 16-bit words).
    pub fn add_u32(&mut self, v: u32) {
        self.add_u16((v >> 16) as u16);
        self.add_u16(v as u16);
    }

    /// Folds the end-around carries to fixpoint and returns the
    /// ones'-complement checksum.
    pub fn finish(mut self) -> u16 {
        while self.sum >> 16 != 0 {
            self.sum = (self.sum & 0xffff) + (self.sum >> 16);
        }
        !(self.sum as u16)
    }
}

/// Computes the checksum of a single buffer.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Verifies a buffer whose checksum field is included in `data`.
///
/// A valid buffer sums (with the stored checksum) to `0xffff`, i.e. the
/// computed complement is zero.
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

/// Computes the TCP/UDP pseudo-header checksum seed for IPv4.
pub fn pseudo_header_v4(src: [u8; 4], dst: [u8; 4], proto: u8, len: u16) -> Checksum {
    let mut c = Checksum::new();
    c.add_bytes(&src);
    c.add_bytes(&dst);
    c.add_u16(u16::from(proto));
    c.add_u16(len);
    c
}

/// Computes the TCP/UDP pseudo-header checksum seed for IPv6.
pub fn pseudo_header_v6(src: [u8; 16], dst: [u8; 16], proto: u8, len: u32) -> Checksum {
    let mut c = Checksum::new();
    c.add_bytes(&src);
    c.add_bytes(&dst);
    c.add_u32(len);
    c.add_u16(u16::from(proto));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 1071 worked example: the sum of these words is 0xddf2 before
    // complement.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        // [0x01, 0x02, 0x03] == words 0x0102, 0x0300
        let data = [0x01u8, 0x02, 0x03];
        assert_eq!(checksum(&data), !(0x0102u16 + 0x0300));
    }

    #[test]
    fn verify_accepts_valid_header() {
        // A real IPv4 header example (from RFC 1071 discussions), checksum
        // field already filled in correctly.
        let mut hdr = [
            0x45u8, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0x00, 0x00, 0xac, 0x10,
            0x0a, 0x63, 0xac, 0x10, 0x0a, 0x0c,
        ];
        let csum = checksum(&hdr);
        hdr[10] = (csum >> 8) as u8;
        hdr[11] = csum as u8;
        assert!(verify(&hdr));
    }

    #[test]
    fn incremental_equals_contiguous() {
        let data: Vec<u8> = (0u8..200).collect();
        let whole = checksum(&data);
        let mut c = Checksum::new();
        c.add_bytes(&data[..100]);
        c.add_bytes(&data[100..]);
        assert_eq!(c.finish(), whole);
    }

    #[test]
    fn all_zeros_checksums_to_ffff() {
        assert_eq!(checksum(&[0u8; 20]), 0xffff);
    }

    /// Regression: 256 KiB of 0xff sums to ~8.6e9, which overflows a u32
    /// accumulator (debug panic / wrong fold in release). The worst case
    /// must still fold to the correct ones'-complement value.
    #[test]
    fn large_all_ones_buffer_does_not_overflow() {
        let data = vec![0xffu8; 256 * 1024];
        // Every word is 0xffff; in ones'-complement arithmetic the sum of
        // any number of 0xffff words folds back to 0xffff, so the
        // complement is 0.
        assert_eq!(checksum(&data), 0);
        assert!(verify(&data));
    }

    /// Naive reference: fold the end-around carry after every word, so the
    /// accumulator never exceeds 17 bits and cannot overflow.
    fn reference_checksum(data: &[u8]) -> u16 {
        let mut sum: u32 = 0;
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
            sum = (sum & 0xffff) + (sum >> 16);
        }
        if let [last] = chunks.remainder() {
            sum += u32::from(u16::from_be_bytes([*last, 0]));
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }

    proptest::proptest! {
        #[test]
        fn matches_reference_on_random_buffers(
            data in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..4096),
        ) {
            // Covers odd lengths: the vec length ranges over 0..4096.
            proptest::prop_assert_eq!(checksum(&data), reference_checksum(&data));
        }

        #[test]
        fn split_point_is_irrelevant(
            data in proptest::collection::vec(proptest::prelude::any::<u8>(), 2..2048),
            split in 0usize..1024,
        ) {
            // Incremental use must equal one contiguous pass as long as the
            // first part is even-length.
            let split = (split * 2).min(data.len());
            let mut c = Checksum::new();
            c.add_bytes(&data[..split]);
            c.add_bytes(&data[split..]);
            proptest::prop_assert_eq!(c.finish(), checksum(&data));
        }
    }
}
