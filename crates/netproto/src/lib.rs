//! # netproto — packet representation and protocol headers
//!
//! This crate is the lowest-level substrate of the WireCAP reproduction. It
//! provides:
//!
//! * [`Packet`] — an owned network packet (cheap to clone via [`bytes::Bytes`])
//!   with capture metadata (timestamp, wire length, snap length);
//! * zero-copy header *views* for Ethernet, IPv4, IPv6, TCP and UDP
//!   ([`ethernet::EthernetFrame`], [`ipv4::Ipv4Header`], …);
//! * a packet [`builder`] that renders a [`flow::FlowKey`] plus payload into
//!   wire-format bytes (used by the traffic generator and the examples);
//! * a [`parse`] module that classifies a raw frame into a
//!   [`parse::ParsedPacket`] summary;
//! * Internet [`checksum`] helpers shared by IPv4/TCP/UDP.
//!
//! The design follows the smoltcp idiom: header types are thin wrappers over
//! byte slices with getter/setter accessors, no allocation on the parse path,
//! and explicit error types instead of panics.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arp;
pub mod builder;
pub mod checksum;
pub mod ethernet;
pub mod flow;
pub mod icmp;
pub mod ipv4;
pub mod ipv6;
pub mod packet;
pub mod parse;
pub mod tcp;
pub mod udp;
pub mod vlan;

pub use builder::PacketBuilder;
pub use flow::{FlowKey, Protocol};
pub use packet::Packet;
pub use parse::{flow_of, parse_frame, ParsedPacket};

/// Errors produced while parsing protocol headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is shorter than the fixed part of the header.
    Truncated,
    /// A length/version/IHL field is inconsistent with the buffer.
    Malformed,
    /// The payload protocol is not one this crate understands.
    Unsupported,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Truncated => write!(f, "buffer truncated"),
            Error::Malformed => write!(f, "malformed header"),
            Error::Unsupported => write!(f, "unsupported protocol"),
        }
    }
}

impl std::error::Error for Error {}

/// The error type returned by every parse path in this crate.
///
/// Alias of [`Error`], named for call sites that only ever see the parsing
/// half of the crate: captured bytes go in, a typed `ParseError` comes out,
/// never a panic.
pub type ParseError = Error;

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, Error>;
