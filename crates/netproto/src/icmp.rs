//! ICMP (v4) message views and emitters.
//!
//! The middlebox application uses ICMP Time Exceeded generation (what a
//! real router does when it decrements a TTL to zero) and Echo for
//! diagnostics; both are covered here with full checksum handling.

use crate::checksum;
use crate::ipv4::{self, Ipv4Fields, Ipv4Header};
use crate::{Error, Result};
use std::net::Ipv4Addr;

/// ICMP message types this module understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Destination unreachable (3), with code.
    DestinationUnreachable(u8),
    /// Echo request (8).
    EchoRequest,
    /// Time exceeded (11), code 0 = TTL exceeded in transit.
    TimeExceeded(u8),
    /// Anything else: (type, code).
    Other(u8, u8),
}

impl IcmpType {
    /// The (type, code) wire pair.
    pub fn wire(self) -> (u8, u8) {
        match self {
            IcmpType::EchoReply => (0, 0),
            IcmpType::DestinationUnreachable(c) => (3, c),
            IcmpType::EchoRequest => (8, 0),
            IcmpType::TimeExceeded(c) => (11, c),
            IcmpType::Other(t, c) => (t, c),
        }
    }

    /// Classifies a (type, code) wire pair.
    pub fn from_wire(t: u8, c: u8) -> Self {
        match (t, c) {
            (0, 0) => IcmpType::EchoReply,
            (3, c) => IcmpType::DestinationUnreachable(c),
            (8, 0) => IcmpType::EchoRequest,
            (11, c) => IcmpType::TimeExceeded(c),
            (t, c) => IcmpType::Other(t, c),
        }
    }
}

/// Immutable view of an ICMP message (an IPv4 payload).
#[derive(Debug, Clone, Copy)]
pub struct IcmpMessage<'a> {
    buf: &'a [u8],
}

impl<'a> IcmpMessage<'a> {
    /// Parses an ICMP message (at least the 8-byte header).
    pub fn parse(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < 8 {
            return Err(Error::Truncated);
        }
        Ok(IcmpMessage { buf })
    }

    /// Message type.
    pub fn icmp_type(&self) -> IcmpType {
        IcmpType::from_wire(self.buf[0], self.buf[1])
    }

    /// Whether the stored checksum is valid over the whole message.
    pub fn checksum_ok(&self) -> bool {
        checksum::verify(self.buf)
    }

    /// The rest-of-header field (identifier/sequence for echo, unused for
    /// time-exceeded).
    pub fn rest_of_header(&self) -> u32 {
        u32::from_be_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]])
    }

    /// Message body (after the 8-byte header): for error messages, the
    /// original IP header + first 8 payload bytes.
    pub fn body(&self) -> &'a [u8] {
        &self.buf[8..]
    }
}

/// Builds a complete Ethernet/IPv4/ICMP **Time Exceeded** frame in
/// response to `original_frame` (the frame whose TTL expired), as RFC 792
/// specifies: the error body quotes the original IP header plus the first
/// 8 payload bytes.
///
/// `router_ip` is the address the error is sent from (the middlebox's own
/// interface). The frame is addressed back to the original sender at the
/// link layer by swapping MACs.
pub fn build_time_exceeded(original_frame: &[u8], router_ip: Ipv4Addr) -> Result<Vec<u8>> {
    let eth = crate::ethernet::EthernetFrame::parse(original_frame)?;
    if eth.ethertype() != crate::ethernet::EtherType::Ipv4 {
        return Err(Error::Unsupported);
    }
    let ip = Ipv4Header::parse(eth.payload())?;

    // Quote: original IP header + first 8 payload bytes.
    let quote_len = ip.header_len() + ip.payload().len().min(8);
    let quote = &eth.payload()[..quote_len];

    let icmp_len = 8 + quote.len();
    let total_len = crate::ethernet::HEADER_LEN + ipv4::MIN_HEADER_LEN + icmp_len;
    let mut out = vec![0u8; total_len];

    // Ethernet: back toward the original sender.
    crate::ethernet::emit(
        &mut out,
        eth.src(),
        eth.dst(),
        crate::ethernet::EtherType::Ipv4,
    )?;
    // IPv4 from the router to the original source, protocol 1 (ICMP).
    ipv4::emit(
        &mut out[crate::ethernet::HEADER_LEN..],
        &Ipv4Fields {
            src: router_ip,
            dst: ip.src(),
            protocol: 1,
            payload_len: icmp_len as u16,
            ttl: 64,
            ident: 0,
        },
    )?;
    // ICMP header + quote, then checksum over the whole message.
    let icmp = &mut out[crate::ethernet::HEADER_LEN + ipv4::MIN_HEADER_LEN..];
    let (t, c) = IcmpType::TimeExceeded(0).wire();
    icmp[0] = t;
    icmp[1] = c;
    icmp[8..8 + quote.len()].copy_from_slice(quote);
    let csum = checksum::checksum(icmp);
    icmp[2..4].copy_from_slice(&csum.to_be_bytes());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowKey, PacketBuilder};

    fn original() -> Vec<u8> {
        PacketBuilder::new()
            .build(
                &FlowKey::udp(
                    "10.9.8.7".parse().unwrap(),
                    3333,
                    "131.225.2.44".parse().unwrap(),
                    53,
                ),
                200,
            )
            .unwrap()
    }

    #[test]
    fn time_exceeded_is_well_formed() {
        let frame = build_time_exceeded(&original(), "192.0.2.1".parse().unwrap()).unwrap();
        crate::builder::validate_frame(&frame).unwrap();
        let ip = Ipv4Header::parse(&frame[14..]).unwrap();
        assert_eq!(ip.protocol(), 1);
        assert_eq!(ip.src(), "192.0.2.1".parse::<Ipv4Addr>().unwrap());
        // Addressed back to the offending packet's source.
        assert_eq!(ip.dst(), "10.9.8.7".parse::<Ipv4Addr>().unwrap());
        let icmp = IcmpMessage::parse(ip.payload()).unwrap();
        assert_eq!(icmp.icmp_type(), IcmpType::TimeExceeded(0));
        assert!(icmp.checksum_ok());
    }

    #[test]
    fn error_body_quotes_original_header_plus_8() {
        let orig = original();
        let frame = build_time_exceeded(&orig, "192.0.2.1".parse().unwrap()).unwrap();
        let ip = Ipv4Header::parse(&frame[14..]).unwrap();
        let icmp = IcmpMessage::parse(ip.payload()).unwrap();
        // Quote = 20-byte original header + 8 bytes = 28 bytes.
        assert_eq!(icmp.body().len(), 28);
        assert_eq!(icmp.body(), &orig[14..14 + 28]);
        // The quoted header still parses as the original datagram (via the
        // prefix parser: the quote deliberately clips the payload).
        let quoted = Ipv4Header::parse_prefix(icmp.body()).unwrap();
        assert_eq!(quoted.dst(), "131.225.2.44".parse::<Ipv4Addr>().unwrap());
    }

    #[test]
    fn non_ip_originals_are_rejected() {
        let mut arp = vec![0u8; 60];
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert_eq!(
            build_time_exceeded(&arp, "192.0.2.1".parse().unwrap()).unwrap_err(),
            Error::Unsupported
        );
    }

    #[test]
    fn icmp_type_wire_roundtrip() {
        for t in [
            IcmpType::EchoReply,
            IcmpType::EchoRequest,
            IcmpType::DestinationUnreachable(3),
            IcmpType::TimeExceeded(1),
            IcmpType::Other(42, 7),
        ] {
            let (ty, code) = t.wire();
            assert_eq!(IcmpType::from_wire(ty, code), t);
        }
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut frame = build_time_exceeded(&original(), "192.0.2.1".parse().unwrap()).unwrap();
        let n = frame.len();
        frame[n - 1] ^= 0xff;
        let ip = Ipv4Header::parse(&frame[14..]).unwrap();
        let icmp = IcmpMessage::parse(ip.payload()).unwrap();
        assert!(!icmp.checksum_ok());
    }
}
