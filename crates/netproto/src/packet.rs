//! Owned packet type with capture metadata.

use bytes::Bytes;

/// An owned network packet together with its capture metadata.
///
/// `Packet` is the unit handed to applications by every capture engine in
/// this workspace. The payload lives in a [`Bytes`] buffer, so cloning a
/// `Packet` is a reference-count bump — this mirrors the zero-copy delivery
/// model of the paper, where only chunk *metadata* moves between kernel and
/// user space while the bytes stay put.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Capture timestamp in nanoseconds since the start of the capture.
    pub ts_ns: u64,
    /// Original length of the packet on the wire, in bytes.
    pub wire_len: u32,
    /// Captured bytes (may be shorter than `wire_len` if a snap length
    /// truncated the capture).
    pub data: Bytes,
}

impl Packet {
    /// Creates a packet whose captured bytes cover the full wire length.
    pub fn new(ts_ns: u64, data: impl Into<Bytes>) -> Self {
        let data = data.into();
        Packet {
            ts_ns,
            wire_len: data.len() as u32,
            data,
        }
    }

    /// Creates a packet that was truncated at capture time (`snaplen`).
    ///
    /// If `snaplen` is larger than the data, the packet is unchanged.
    pub fn with_snaplen(ts_ns: u64, data: impl Into<Bytes>, snaplen: usize) -> Self {
        let data: Bytes = data.into();
        let wire_len = data.len() as u32;
        let data = if data.len() > snaplen {
            data.slice(..snaplen)
        } else {
            data
        };
        Packet {
            ts_ns,
            wire_len,
            data,
        }
    }

    /// Number of bytes actually captured.
    pub fn captured_len(&self) -> usize {
        self.data.len()
    }

    /// Whether the capture truncated the packet.
    pub fn is_truncated(&self) -> bool {
        (self.data.len() as u32) < self.wire_len
    }

    /// Borrow the captured bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_packet_roundtrip() {
        let p = Packet::new(42, vec![1u8, 2, 3, 4]);
        assert_eq!(p.ts_ns, 42);
        assert_eq!(p.wire_len, 4);
        assert_eq!(p.captured_len(), 4);
        assert!(!p.is_truncated());
        assert_eq!(p.bytes(), &[1, 2, 3, 4]);
    }

    #[test]
    fn snaplen_truncates() {
        let p = Packet::with_snaplen(0, vec![0u8; 128], 64);
        assert_eq!(p.wire_len, 128);
        assert_eq!(p.captured_len(), 64);
        assert!(p.is_truncated());
    }

    #[test]
    fn snaplen_larger_than_packet_is_noop() {
        let p = Packet::with_snaplen(0, vec![0u8; 60], 65535);
        assert_eq!(p.wire_len, 60);
        assert_eq!(p.captured_len(), 60);
        assert!(!p.is_truncated());
    }

    #[test]
    fn clone_is_shallow() {
        let p = Packet::new(1, vec![9u8; 1500]);
        let q = p.clone();
        // Bytes clones share the same backing storage.
        assert_eq!(p.data.as_ptr(), q.data.as_ptr());
    }
}
