//! Fuzz-style pinning of the netproto parse paths: captured bytes are
//! attacker-controlled, so every parser reachable from a raw frame must
//! return a typed `ParseError` on garbage — never panic, never index out
//! of bounds.

use netproto::{flow_of, parse_frame, PacketBuilder};
use proptest::prelude::*;

proptest! {
    /// Arbitrary byte slices (including empty and odd-length) through the
    /// full classification path.
    #[test]
    fn parse_frame_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse_frame(&data);
        let _ = flow_of(&data);
    }

    /// Arbitrary bytes through each header parser directly.
    #[test]
    fn header_parsers_never_panic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = netproto::ethernet::EthernetFrame::parse(&data);
        let _ = netproto::vlan::VlanTag::parse(&data);
        let _ = netproto::ipv4::Ipv4Header::parse(&data).map(|h| h.payload().len());
        let _ = netproto::ipv6::Ipv6Header::parse(&data).map(|h| h.payload().len());
        let _ = netproto::tcp::TcpHeader::parse(&data).map(|h| h.payload().len());
        let _ = netproto::udp::UdpHeader::parse(&data).map(|h| h.payload().len());
        let _ = netproto::arp::ArpMessage::parse(&data);
        let _ = netproto::icmp::IcmpMessage::parse(&data);
    }

    /// Well-formed frames truncated at every possible length: the parse
    /// must either succeed on a consistent prefix or fail typed, and the
    /// fast extractor must agree with the full parser about the flow.
    #[test]
    fn truncated_real_frames_fail_typed(
        cut in 0usize..200,
        src_port in 1u16..u16::MAX,
        dst_port in 1u16..u16::MAX,
        tcp in any::<bool>(),
    ) {
        use std::net::Ipv4Addr;
        let flow = if tcp {
            netproto::FlowKey::tcp(Ipv4Addr::new(131, 225, 2, 3), src_port,
                                   Ipv4Addr::new(10, 0, 0, 1), dst_port)
        } else {
            netproto::FlowKey::udp(Ipv4Addr::new(131, 225, 2, 3), src_port,
                                   Ipv4Addr::new(10, 0, 0, 1), dst_port)
        };
        let frame = PacketBuilder::new().build(&flow, 200).unwrap();
        let cut = cut.min(frame.len());
        let prefix = &frame[..cut];
        match parse_frame(prefix) {
            Ok(p) => prop_assert_eq!(p.flow, flow_of(prefix)),
            Err(_) => prop_assert_eq!(flow_of(prefix), None),
        }
        // The full frame always parses and the extractors agree.
        let full = parse_frame(&frame).unwrap();
        prop_assert_eq!(full.flow, Some(flow));
        prop_assert_eq!(flow_of(&frame), Some(flow));
    }

    /// Bit-flipped well-formed frames: corruption anywhere in the header
    /// stack must never panic.
    #[test]
    fn bitflipped_frames_never_panic(pos in 0usize..128, bit in 0u8..8) {
        use std::net::Ipv4Addr;
        let flow = netproto::FlowKey::udp(
            Ipv4Addr::new(192, 0, 2, 1), 5000, Ipv4Addr::new(198, 51, 100, 2), 53);
        let mut frame = PacketBuilder::new().build(&flow, 128).unwrap();
        let pos = pos.min(frame.len() - 1);
        frame[pos] ^= 1 << bit;
        let _ = parse_frame(&frame);
        let _ = flow_of(&frame);
    }
}
