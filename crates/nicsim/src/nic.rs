//! The assembled multi-queue NIC.

use crate::flow_director::FlowDirector;
use crate::ring::RxRing;
use crate::rss::Rss;
use crate::tx::TxRing;
use netproto::FlowKey;

/// Static configuration of a simulated NIC.
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// Identifier used in chunk metadata ({nic_id, ring_id, chunk_id}).
    pub nic_id: u16,
    /// Number of receive queues (the paper uses 1–6).
    pub rx_queues: usize,
    /// Number of transmit queues.
    pub tx_queues: usize,
    /// Receive ring size in descriptors (the paper evaluates with 1024).
    pub ring_size: usize,
    /// Transmit ring size in descriptors.
    pub tx_ring_size: usize,
    /// Link speed in Gbit/s.
    pub link_gbps: f64,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            nic_id: 0,
            rx_queues: 1,
            tx_queues: 1,
            ring_size: crate::ring::DEFAULT_RING_SIZE,
            tx_ring_size: crate::ring::DEFAULT_RING_SIZE,
            link_gbps: 10.0,
        }
    }
}

impl NicConfig {
    /// The paper's experiment NIC: an Intel 82599 10 GbE port with
    /// `queues` receive queues of 1024 descriptors each.
    pub fn paper(nic_id: u16, queues: usize) -> Self {
        NicConfig {
            nic_id,
            rx_queues: queues,
            tx_queues: queues.max(1),
            ..Default::default()
        }
    }
}

/// A simulated multi-queue NIC in promiscuous capture mode.
#[derive(Debug)]
pub struct Nic {
    cfg: NicConfig,
    rss: Rss,
    fdir: Option<FlowDirector>,
    rx: Vec<RxRing>,
    tx: Vec<TxRing>,
    /// Per-queue packets offered by the wire (pre-drop).
    offered: Vec<u64>,
    /// Per-queue bytes successfully DMA'd to host memory.
    dma_bytes: Vec<u64>,
}

impl Nic {
    /// Brings up a NIC: rings armed, RSS programmed round-robin.
    pub fn new(cfg: NicConfig) -> Self {
        assert!(cfg.rx_queues >= 1 && cfg.tx_queues >= 1);
        assert!(
            cfg.ring_size * cfg.rx_queues <= crate::ring::MAX_DESCRIPTORS,
            "82599 provides at most 8192 descriptors per port"
        );
        Nic {
            rss: Rss::new(cfg.rx_queues),
            fdir: None,
            rx: (0..cfg.rx_queues)
                .map(|_| RxRing::new(cfg.ring_size))
                .collect(),
            tx: (0..cfg.tx_queues)
                .map(|_| TxRing::new(cfg.tx_ring_size, cfg.link_gbps))
                .collect(),
            offered: vec![0; cfg.rx_queues],
            dma_bytes: vec![0; cfg.rx_queues],
            cfg,
        }
    }

    /// The NIC's configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Enables Flow Director steering in front of RSS.
    pub fn enable_flow_director(&mut self) {
        self.fdir = Some(FlowDirector::new());
    }

    /// The Flow Director table, if enabled.
    pub fn flow_director_mut(&mut self) -> Option<&mut FlowDirector> {
        self.fdir.as_mut()
    }

    /// The steering decision for a flow (Flow Director first, RSS
    /// fallback), without touching the rings.
    pub fn steer(&mut self, flow: &FlowKey) -> usize {
        if let Some(fd) = &mut self.fdir {
            if let Some(q) = fd.steer(flow) {
                return q;
            }
        }
        self.rss.steer(flow)
    }

    /// Steers with a precomputed RSS hash (per-flow hash caching — the
    /// hot path of the experiment harness).
    pub fn steer_hash(&self, hash: u32) -> usize {
        self.rss.steer_hash(hash)
    }

    /// The RSS stage (for hash precomputation).
    pub fn rss(&self) -> &Rss {
        &self.rss
    }

    /// Offers one packet of `len` bytes to queue `q`: one DMA attempt.
    /// Returns `true` if it landed in a ring buffer.
    pub fn offer(&mut self, q: usize, len: u16) -> bool {
        self.offered[q] += 1;
        let landed = self.rx[q].dma();
        if landed {
            // The captured frame is the wire frame minus FCS.
            self.dma_bytes[q] += u64::from(len.saturating_sub(4));
        }
        landed
    }

    /// The receive ring of queue `q`.
    pub fn rx_ring(&self, q: usize) -> &RxRing {
        &self.rx[q]
    }

    /// Mutable receive ring of queue `q` (engines re-arm through this).
    pub fn rx_ring_mut(&mut self, q: usize) -> &mut RxRing {
        &mut self.rx[q]
    }

    /// The transmit ring of queue `q`.
    pub fn tx_ring(&self, q: usize) -> &TxRing {
        &self.tx[q]
    }

    /// Mutable transmit ring of queue `q`.
    pub fn tx_ring_mut(&mut self, q: usize) -> &mut TxRing {
        &mut self.tx[q]
    }

    /// Packets offered to queue `q` so far.
    pub fn offered(&self, q: usize) -> u64 {
        self.offered[q]
    }

    /// Bytes DMA'd into host memory for queue `q`.
    pub fn dma_bytes(&self, q: usize) -> u64 {
        self.dma_bytes[q]
    }

    /// Total capture drops across all queues (no ready descriptor).
    pub fn total_rx_drops(&self) -> u64 {
        self.rx.iter().map(RxRing::drops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn flow(i: u16) -> FlowKey {
        FlowKey::udp(
            Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
            1000 + i,
            Ipv4Addr::new(131, 225, 2, 1),
            443,
        )
    }

    #[test]
    fn paper_config_limits() {
        let nic = Nic::new(NicConfig::paper(0, 6));
        assert_eq!(nic.config().rx_queues, 6);
        assert_eq!(nic.rx_ring(0).size(), 1024);
    }

    #[test]
    #[should_panic(expected = "8192 descriptors")]
    fn descriptor_budget_enforced() {
        Nic::new(NicConfig {
            rx_queues: 16,
            ring_size: 1024,
            ..Default::default()
        });
    }

    #[test]
    fn steering_is_stable_per_flow() {
        let mut nic = Nic::new(NicConfig::paper(0, 6));
        let f = flow(7);
        let q = nic.steer(&f);
        assert_eq!(nic.steer(&f), q);
        let h = nic.rss().hasher().hash_flow(&f);
        assert_eq!(nic.steer_hash(h), q);
    }

    #[test]
    fn flow_director_overrides_rss() {
        let mut nic = Nic::new(NicConfig::paper(0, 4));
        let f = flow(3);
        let rss_q = nic.steer(&f);
        nic.enable_flow_director();
        let target = (rss_q + 1) % 4;
        nic.flow_director_mut().unwrap().add_filter(f, target);
        assert_eq!(nic.steer(&f), target);
    }

    #[test]
    fn offer_accounts_bytes_and_drops() {
        let mut nic = Nic::new(NicConfig {
            ring_size: 2,
            ..NicConfig::paper(0, 1)
        });
        assert!(nic.offer(0, 64));
        assert!(nic.offer(0, 64));
        assert!(!nic.offer(0, 64)); // ring exhausted, nothing re-armed
        assert_eq!(nic.offered(0), 3);
        assert_eq!(nic.dma_bytes(0), 120); // 2 × (64 − 4)
        assert_eq!(nic.total_rx_drops(), 1);
    }

    #[test]
    fn rearm_through_ring_handle() {
        let mut nic = Nic::new(NicConfig {
            ring_size: 1,
            ..NicConfig::paper(0, 1)
        });
        assert!(nic.offer(0, 64));
        assert!(!nic.offer(0, 64));
        nic.rx_ring_mut(0).rearm(1);
        assert!(nic.offer(0, 64));
    }
}
