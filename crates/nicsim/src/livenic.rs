//! A thread-backed in-memory NIC for the live capture mode.
//!
//! The simulated [`crate::nic::Nic`] runs on virtual time and is what the
//! figures use. `LiveNic` is its wall-clock sibling: real packets, real
//! threads, bounded lock-free per-queue rings, RSS steering with the same
//! Toeplitz hash. The examples and the live WireCAP engine run against
//! it, demonstrating that the engine objects are a working concurrent
//! artifact and not only a model.

use crate::rss::Rss;
use crossbeam::queue::ArrayQueue;
use netproto::{parse_frame, Packet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One receive queue of a live NIC.
#[derive(Debug)]
pub struct LiveQueue {
    ring: ArrayQueue<Packet>,
    received: AtomicU64,
    dropped: AtomicU64,
}

impl LiveQueue {
    fn new(depth: usize) -> Self {
        LiveQueue {
            ring: ArrayQueue::new(depth),
            received: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Pops the next received packet, if any.
    pub fn pop(&self) -> Option<Packet> {
        self.ring.pop()
    }

    /// Pops up to `max` packets into `out`, the batched receive path: one
    /// call amortizes the per-pop synchronization over the whole batch.
    /// Returns how many packets were moved.
    pub fn pop_batch(&self, out: &mut Vec<Packet>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.ring.pop() {
                Some(pkt) => {
                    out.push(pkt);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Packets successfully enqueued.
    pub fn received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }

    /// Packets dropped because the ring was full — the live analogue of
    /// "no receive descriptor in the ready state".
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Packets currently waiting in the ring.
    pub fn depth(&self) -> usize {
        self.ring.len()
    }

    /// Ring capacity in packets.
    ///
    /// NIC-side accounting no longer folds into telemetry here: every
    /// backend reports raw counts through
    /// `wirecap::backend::BackendQueue::accounting`, and the one
    /// field-by-field copy lives in that trait's `fill_telemetry` — so
    /// no backend can skew the offered/dropped bookkeeping.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }
}

/// A live, multi-queue, promiscuous in-memory NIC.
#[derive(Debug)]
pub struct LiveNic {
    queues: Vec<Arc<LiveQueue>>,
    rss: Rss,
    stopped: AtomicBool,
}

impl LiveNic {
    /// Creates a live NIC with `queues` receive queues of `depth` slots.
    pub fn new(queues: usize, depth: usize) -> Arc<Self> {
        assert!(queues >= 1 && depth >= 1);
        Arc::new(LiveNic {
            queues: (0..queues)
                .map(|_| Arc::new(LiveQueue::new(depth)))
                .collect(),
            rss: Rss::new(queues),
            stopped: AtomicBool::new(false),
        })
    }

    /// Number of receive queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Handle to receive queue `q`.
    pub fn queue(&self, q: usize) -> Arc<LiveQueue> {
        Arc::clone(&self.queues[q])
    }

    /// Injects a packet from "the wire": parses its 5-tuple, steers by
    /// RSS, enqueues or drops. Returns the queue it was steered to, or
    /// `None` if the packet was dropped (queue full or unparseable).
    pub fn inject(&self, pkt: Packet) -> Option<usize> {
        let q = match parse_frame(&pkt.data).ok().and_then(|p| p.flow) {
            Some(flow) => self.rss.steer(&flow),
            // Non-IP traffic lands on queue 0, as hardware RSS does.
            None => 0,
        };
        let queue = &self.queues[q];
        match queue.ring.push(pkt) {
            Ok(()) => {
                queue.received.fetch_add(1, Ordering::Relaxed);
                Some(q)
            }
            Err(_) => {
                queue.dropped.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Injects a slice of packets from "the wire" in one call, steering
    /// each by RSS. Returns how many landed; the rest were dropped
    /// (their target queues were full).
    pub fn inject_batch(&self, pkts: &[Packet]) -> u64 {
        pkts.iter()
            .filter(|pkt| self.inject((*pkt).clone()).is_some())
            .count() as u64
    }

    /// Marks the NIC stopped; consumers treat this as end-of-stream once
    /// the rings drain.
    pub fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
    }

    /// Whether the NIC has been stopped.
    pub fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netproto::{FlowKey, PacketBuilder};
    use std::net::Ipv4Addr;

    fn packet(i: u16) -> Packet {
        let flow = FlowKey::udp(
            Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
            1000 + i,
            Ipv4Addr::new(131, 225, 2, 1),
            443,
        );
        PacketBuilder::new()
            .build_packet(u64::from(i), &flow, 100)
            .unwrap()
    }

    #[test]
    fn steering_is_flow_stable() {
        let nic = LiveNic::new(4, 64);
        let q1 = nic.inject(packet(5)).unwrap();
        let q2 = nic.inject(packet(5)).unwrap();
        assert_eq!(q1, q2);
    }

    #[test]
    fn full_queue_drops() {
        let nic = LiveNic::new(1, 2);
        assert!(nic.inject(packet(1)).is_some());
        assert!(nic.inject(packet(2)).is_some());
        assert!(nic.inject(packet(3)).is_none());
        assert_eq!(nic.queue(0).received(), 2);
        assert_eq!(nic.queue(0).dropped(), 1);
    }

    #[test]
    fn consumers_drain_across_threads() {
        let nic = LiveNic::new(2, 1024);
        let total = 500u16;
        let producer = {
            let nic = Arc::clone(&nic);
            std::thread::spawn(move || {
                for i in 0..total {
                    while nic.inject(packet(i)).is_none() {
                        std::thread::yield_now();
                    }
                }
                nic.stop();
            })
        };
        let consumers: Vec<_> = (0..2)
            .map(|q| {
                let queue = nic.queue(q);
                let nic = Arc::clone(&nic);
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    loop {
                        match queue.pop() {
                            Some(_) => n += 1,
                            None if nic.is_stopped() && queue.depth() == 0 => return n,
                            None => std::thread::yield_now(),
                        }
                    }
                })
            })
            .collect();
        producer.join().unwrap();
        let consumed: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(consumed, u64::from(total));
    }

    #[test]
    fn batch_inject_and_batch_pop_roundtrip() {
        let nic = LiveNic::new(1, 64);
        let pkts: Vec<Packet> = (0..10).map(packet).collect();
        assert_eq!(nic.inject_batch(&pkts), 10);
        let mut out = Vec::new();
        assert_eq!(nic.queue(0).pop_batch(&mut out, 4), 4);
        assert_eq!(nic.queue(0).pop_batch(&mut out, 100), 6);
        assert_eq!(out.len(), 10);
        assert_eq!(nic.queue(0).pop_batch(&mut out, 100), 0);
    }

    #[test]
    fn batch_inject_counts_only_landed_packets() {
        let nic = LiveNic::new(1, 4);
        let pkts: Vec<Packet> = (0..10).map(packet).collect();
        assert_eq!(nic.inject_batch(&pkts), 4);
        assert_eq!(nic.queue(0).dropped(), 6);
    }

    #[test]
    fn non_ip_lands_on_queue_zero() {
        let nic = LiveNic::new(4, 16);
        let raw = Packet::new(0, vec![0u8; 60]); // ethertype 0x0000
        assert_eq!(nic.inject(raw), Some(0));
    }
}
