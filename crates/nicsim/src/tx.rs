//! Transmit descriptor rings.
//!
//! "To transmit a packet from a transmit queue, the packet should be
//! attached to a transmit descriptor in the transmit ring of the queue.
//! … After that, the NIC transmits the packet." (§3.2.2b)
//!
//! Attach is a metadata operation (this is what makes WireCAP's
//! forwarding zero-copy); the ring then drains in FIFO order at line
//! rate. Completion frees the descriptor — and, for WireCAP, unpins the
//! ring-buffer-pool cell holding the packet.

use std::collections::VecDeque;

/// A transmit descriptor ring draining at line rate.
#[derive(Debug, Clone)]
pub struct TxRing {
    size: usize,
    /// (attach timestamp ns, frame length incl. FCS) per pending packet.
    pending: VecDeque<(u64, u16)>,
    /// Virtual time at which the transmitter finished its last completed
    /// frame.
    service_clock_ns: u64,
    ns_per_byte: f64,
    completed: u64,
    completed_bytes: u64,
    rejected: u64,
}

/// Preamble + inter-frame gap, bytes of line time charged per frame.
const INTERFRAME_OVERHEAD: u64 = 20;

impl TxRing {
    /// Creates a ring of `size` descriptors on a `link_gbps` link.
    pub fn new(size: usize, link_gbps: f64) -> Self {
        assert!(size > 0 && link_gbps > 0.0);
        TxRing {
            size,
            pending: VecDeque::new(),
            service_clock_ns: 0,
            ns_per_byte: 8.0 / link_gbps,
            completed: 0,
            completed_bytes: 0,
            rejected: 0,
        }
    }

    /// Attaches a frame to a descriptor at time `now`; returns `false`
    /// (and counts a rejection) when no descriptor is free.
    pub fn attach(&mut self, now_ns: u64, len: u16) -> bool {
        self.advance(now_ns);
        if self.pending.len() >= self.size {
            self.rejected += 1;
            return false;
        }
        self.pending.push_back((now_ns, len));
        true
    }

    /// Completes every frame whose line time has elapsed by `now`.
    /// Returns the number of frames completed by this call.
    pub fn advance(&mut self, now_ns: u64) -> u64 {
        let mut done = 0;
        while let Some(&(ts, len)) = self.pending.front() {
            let start = self.service_clock_ns.max(ts);
            let tx_ns = ((u64::from(len) + INTERFRAME_OVERHEAD) as f64 * self.ns_per_byte) as u64;
            let completion = start + tx_ns;
            if completion > now_ns {
                break;
            }
            self.service_clock_ns = completion;
            self.pending.pop_front();
            self.completed += 1;
            self.completed_bytes += u64::from(len);
            done += 1;
        }
        done
    }

    /// Frames currently occupying descriptors.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Frames fully transmitted.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Bytes fully transmitted (frame bytes, excluding inter-frame gap).
    pub fn completed_bytes(&self) -> u64 {
        self.completed_bytes
    }

    /// Attach attempts rejected for want of a descriptor.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Ring capacity.
    pub fn size(&self) -> usize {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmits_at_line_rate() {
        // 64-byte frames on 10 GbE take (64+20)*0.8 = 67.2 ns each.
        let mut tx = TxRing::new(1024, 10.0);
        for _ in 0..100 {
            assert!(tx.attach(0, 64));
        }
        assert_eq!(tx.advance(66), 0);
        assert_eq!(tx.advance(67), 1);
        // After 100 frame times everything is out.
        assert_eq!(tx.advance(6720), 99);
        assert_eq!(tx.completed(), 100);
        assert_eq!(tx.completed_bytes(), 6400);
    }

    #[test]
    fn ring_full_rejects() {
        let mut tx = TxRing::new(4, 10.0);
        for _ in 0..4 {
            assert!(tx.attach(0, 1518));
        }
        assert!(!tx.attach(0, 1518));
        assert_eq!(tx.rejected(), 1);
        assert_eq!(tx.pending(), 4);
    }

    #[test]
    fn completion_frees_descriptors() {
        let mut tx = TxRing::new(2, 10.0);
        assert!(tx.attach(0, 64));
        assert!(tx.attach(0, 64));
        assert!(!tx.attach(0, 64));
        // One frame time later a descriptor is free again.
        assert!(tx.attach(100, 64));
    }

    #[test]
    fn idle_gap_does_not_bank_capacity() {
        let mut tx = TxRing::new(16, 10.0);
        tx.attach(0, 64);
        tx.advance(1_000_000); // long idle
                               // A frame attached now still takes a full frame time.
        tx.attach(1_000_000, 64);
        assert_eq!(tx.advance(1_000_050), 0);
        assert_eq!(tx.advance(1_000_070), 1);
    }

    #[test]
    fn fifo_order_back_to_back() {
        let mut tx = TxRing::new(16, 10.0);
        tx.attach(0, 64); // completes at 68 (67.2 truncated)
        tx.attach(0, 1518); // completes at ~67.2+1230.4
        assert_eq!(tx.advance(68), 1);
        assert_eq!(tx.advance(1290), 0);
        assert_eq!(tx.advance(1298), 1);
    }
}
