//! Receive-side scaling: Toeplitz hashing and the indirection table.
//!
//! RSS is the traffic-steering mechanism the paper's paradigm builds on
//! (§1, Fig. 1): the NIC hashes each packet's 5-tuple fields and uses the
//! low bits of the hash to pick a receive queue via an indirection table,
//! so "packets of the same flow \[go\] to the same core". The hash here is
//! the real Toeplitz function with Microsoft's verification key, tested
//! against the published test vectors — the skewed queue loads in Fig. 3
//! come out of the same arithmetic real hardware uses.

use netproto::FlowKey;

/// Microsoft's 40-byte RSS verification key (the de-facto default).
pub const MICROSOFT_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// Number of entries in the 82599's RSS indirection (RETA) table.
pub const RETA_SIZE: usize = 128;

/// Which tuple fields feed the hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashFields {
    /// Source/destination addresses only (the 82599's non-TCP default).
    Ipv4,
    /// Addresses and ports (TCP/UDP 4-tuple hashing).
    Ipv4Ports,
}

/// A Toeplitz hasher with a fixed key.
#[derive(Debug, Clone)]
pub struct RssHasher {
    key: [u8; 40],
    fields: HashFields,
}

impl Default for RssHasher {
    fn default() -> Self {
        RssHasher::new(MICROSOFT_KEY, HashFields::Ipv4Ports)
    }
}

impl RssHasher {
    /// Creates a hasher with an explicit key and field selection.
    pub fn new(key: [u8; 40], fields: HashFields) -> Self {
        RssHasher { key, fields }
    }

    /// Computes the Toeplitz hash over an input byte string.
    ///
    /// The key is conceptually an infinite bit string; each set input bit
    /// (MSB first) XORs in the 32-bit key window starting at that bit
    /// position.
    pub fn hash_bytes(&self, input: &[u8]) -> u32 {
        let mut result = 0u32;
        for (i, &b) in input.iter().enumerate() {
            for bit in 0..8 {
                if b & (0x80 >> bit) != 0 {
                    result ^= self.key_window(i * 8 + bit);
                }
            }
        }
        result
    }

    /// The 32-bit key window starting at bit offset `off`.
    fn key_window(&self, off: usize) -> u32 {
        let byte = off / 8;
        let shift = off % 8;
        let mut window = 0u64;
        for i in 0..5 {
            let k = self.key.get(byte + i).copied().unwrap_or(0);
            window = (window << 8) | u64::from(k);
        }
        ((window >> (8 - shift)) & 0xffff_ffff) as u32
    }

    /// Hashes an IPv4 flow per the configured field selection.
    pub fn hash_flow(&self, flow: &FlowKey) -> u32 {
        let mut input = [0u8; 12];
        input[0..4].copy_from_slice(&flow.src_ip.octets());
        input[4..8].copy_from_slice(&flow.dst_ip.octets());
        match self.fields {
            HashFields::Ipv4 => self.hash_bytes(&input[..8]),
            HashFields::Ipv4Ports => {
                input[8..10].copy_from_slice(&flow.src_port.to_be_bytes());
                input[10..12].copy_from_slice(&flow.dst_port.to_be_bytes());
                self.hash_bytes(&input)
            }
        }
    }
}

/// The RSS steering stage: hash → indirection table → queue.
#[derive(Debug, Clone)]
pub struct Rss {
    hasher: RssHasher,
    reta: [u8; RETA_SIZE],
}

impl Rss {
    /// Creates RSS steering for `queues` receive queues with the default
    /// round-robin-initialized indirection table (what the ixgbe driver
    /// programs at start-up).
    pub fn new(queues: usize) -> Self {
        assert!((1..=255).contains(&queues));
        let mut reta = [0u8; RETA_SIZE];
        for (i, e) in reta.iter_mut().enumerate() {
            *e = (i % queues) as u8;
        }
        Rss {
            hasher: RssHasher::default(),
            reta,
        }
    }

    /// Replaces the indirection table (must reference valid queues).
    pub fn set_reta(&mut self, reta: [u8; RETA_SIZE]) {
        self.reta = reta;
    }

    /// Steers a flow to a queue index.
    pub fn steer(&self, flow: &FlowKey) -> usize {
        let h = self.hasher.hash_flow(flow);
        usize::from(self.reta[(h as usize) & (RETA_SIZE - 1)])
    }

    /// Steers using a precomputed hash (per-flow caching).
    pub fn steer_hash(&self, hash: u32) -> usize {
        usize::from(self.reta[(hash as usize) & (RETA_SIZE - 1)])
    }

    /// Access to the hasher for precomputing flow hashes.
    pub fn hasher(&self) -> &RssHasher {
        &self.hasher
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn flow(src: [u8; 4], sport: u16, dst: [u8; 4], dport: u16) -> FlowKey {
        FlowKey::tcp(Ipv4Addr::from(src), sport, Ipv4Addr::from(dst), dport)
    }

    /// The published Microsoft RSS verification suite (IPv4 with ports).
    #[test]
    fn microsoft_test_vectors_with_ports() {
        let h = RssHasher::new(MICROSOFT_KEY, HashFields::Ipv4Ports);
        let cases = [
            (
                flow([66, 9, 149, 187], 2794, [161, 142, 100, 80], 1766),
                0x51cc_c178u32,
            ),
            (
                flow([199, 92, 111, 2], 14230, [65, 69, 140, 83], 4739),
                0xc626_b0ea,
            ),
            (
                flow([24, 19, 198, 95], 12898, [12, 22, 207, 184], 38024),
                0x5c2b_394a,
            ),
            (
                flow([38, 27, 205, 30], 48228, [209, 142, 163, 6], 2217),
                0xafc7_327f,
            ),
            (
                flow([153, 39, 163, 191], 44251, [202, 188, 127, 2], 1303),
                0x10e8_28a2,
            ),
        ];
        for (f, expect) in cases {
            assert_eq!(h.hash_flow(&f), expect, "flow {f}");
        }
    }

    /// The published vectors for address-only hashing.
    #[test]
    fn microsoft_test_vectors_addresses_only() {
        let h = RssHasher::new(MICROSOFT_KEY, HashFields::Ipv4);
        let cases = [
            (
                flow([66, 9, 149, 187], 0, [161, 142, 100, 80], 0),
                0x323e_8fc2u32,
            ),
            (
                flow([199, 92, 111, 2], 0, [65, 69, 140, 83], 0),
                0xd718_262a,
            ),
            (
                flow([24, 19, 198, 95], 0, [12, 22, 207, 184], 0),
                0xd2d0_a5de,
            ),
            (
                flow([38, 27, 205, 30], 0, [209, 142, 163, 6], 0),
                0x8298_9176,
            ),
            (
                flow([153, 39, 163, 191], 0, [202, 188, 127, 2], 0),
                0x5d18_09c5,
            ),
        ];
        for (f, expect) in cases {
            assert_eq!(h.hash_flow(&f), expect, "flow {f}");
        }
    }

    #[test]
    fn same_flow_same_queue() {
        let rss = Rss::new(6);
        let f = flow([131, 225, 2, 4], 5555, [8, 8, 8, 8], 443);
        let q = rss.steer(&f);
        for _ in 0..10 {
            assert_eq!(rss.steer(&f), q);
        }
        assert!(q < 6);
    }

    #[test]
    fn steer_hash_matches_steer() {
        let rss = Rss::new(4);
        let f = flow([10, 1, 2, 3], 1234, [10, 3, 2, 1], 80);
        let h = rss.hasher().hash_flow(&f);
        assert_eq!(rss.steer_hash(h), rss.steer(&f));
    }

    #[test]
    fn queues_all_reachable() {
        let rss = Rss::new(6);
        let mut seen = [false; 6];
        let mut b = 0u16;
        while seen.iter().any(|s| !s) && b < 2000 {
            let f = flow([10, 0, (b >> 8) as u8, b as u8], 1000 + b, [8, 8, 8, 8], 80);
            seen[rss.steer(&f)] = true;
            b += 1;
        }
        assert!(seen.iter().all(|&s| s), "some queue never selected");
    }

    #[test]
    fn custom_reta_redirects() {
        let mut rss = Rss::new(4);
        rss.set_reta([3u8; RETA_SIZE]);
        let f = flow([1, 2, 3, 4], 5, [6, 7, 8, 9], 10);
        assert_eq!(rss.steer(&f), 3);
    }
}
