//! # nicsim — a simulated multi-queue commodity NIC
//!
//! The paper's platform is an Intel 82599 10 GbE NIC: up to 8192 receive
//! descriptors partitioned across queues, RSS steering, optional Flow
//! Director, DMA into pre-armed ring buffers, and per-queue transmit
//! rings (§2.1, §3.3). This crate models that device faithfully enough
//! that every drop mechanism the paper discusses arises from the same
//! cause it has in hardware:
//!
//! > "incoming packets will be dropped if the receive descriptors in the
//! > ready state aren't available" (§2.1)
//!
//! * [`rss`] — the real Toeplitz hash (verified against the Microsoft
//!   test vectors) plus a 128-entry indirection table;
//! * [`ring`] — receive descriptor rings with ready/used descriptor
//!   states and explicit re-arming, the heart of the drop model;
//! * [`flow_director`] — the 82599's flow-table steering (implemented for
//!   completeness; the paper notes it is "typically not used in a packet
//!   capture environment because the traffic is unidirectional");
//! * [`nic`] — the assembled device: steering → per-queue DMA → rings,
//!   with per-queue offered/dropped accounting and bus-byte metering;
//! * [`tx`] — transmit rings with line-rate draining (for the forwarding
//!   experiments);
//! * [`livenic`] — a thread-backed in-memory NIC carrying real packets,
//!   used by the live (non-simulated) capture mode and the examples.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod flow_director;
pub mod livenic;
pub mod nic;
pub mod ring;
pub mod rss;
pub mod tx;

pub use nic::{Nic, NicConfig};
pub use ring::{RxRing, DEFAULT_RING_SIZE};
pub use rss::RssHasher;
pub use tx::TxRing;
