//! Intel Flow Director: flow-table-based steering.
//!
//! "Flow Director maintains a flow table in the NIC to assign packets
//! across queues. … The flow table is established and updated by traffic
//! in both the forward and reverse directions. Flow Director is typically
//! not used in a packet capture environment because the traffic is
//! unidirectional." (§6)
//!
//! Implemented for completeness of the NIC model: perfect-match filters
//! with a bounded table, ATR-style automatic learning from transmitted
//! traffic, and RSS fallback for misses.

use netproto::FlowKey;
use std::collections::HashMap;

/// The 82599's perfect-match filter capacity (8k entries mode).
pub const DEFAULT_TABLE_CAPACITY: usize = 8192;

/// A Flow Director table.
#[derive(Debug, Clone)]
pub struct FlowDirector {
    table: HashMap<FlowKey, usize>,
    capacity: usize,
    /// Lookups that found a filter.
    pub hits: u64,
    /// Lookups that fell back to RSS.
    pub misses: u64,
}

impl FlowDirector {
    /// Creates an empty table with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TABLE_CAPACITY)
    }

    /// Creates an empty table with a custom capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0);
        FlowDirector {
            table: HashMap::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Installs a perfect-match filter; returns `false` when the table is
    /// full (hardware signals this via a filter-add failure).
    pub fn add_filter(&mut self, flow: FlowKey, queue: usize) -> bool {
        if self.table.len() >= self.capacity && !self.table.contains_key(&flow) {
            return false;
        }
        self.table.insert(flow, queue);
        true
    }

    /// Removes a filter; returns whether it existed.
    pub fn remove_filter(&mut self, flow: &FlowKey) -> bool {
        self.table.remove(flow).is_some()
    }

    /// ATR (application-targeted routing): learn from a *transmitted*
    /// packet — route the reverse direction of the flow to the queue the
    /// transmitting core uses.
    pub fn learn_from_tx(&mut self, transmitted: &FlowKey, tx_queue: usize) -> bool {
        self.add_filter(transmitted.reversed(), tx_queue)
    }

    /// Looks up the steering decision for a received packet; `None` falls
    /// back to RSS.
    pub fn steer(&mut self, flow: &FlowKey) -> Option<usize> {
        match self.table.get(flow) {
            Some(&q) => {
                self.hits += 1;
                Some(q)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Number of installed filters.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl Default for FlowDirector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn flow(last: u8) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, last),
            40000,
            Ipv4Addr::new(131, 225, 2, 1),
            443,
        )
    }

    #[test]
    fn perfect_filter_steers() {
        let mut fd = FlowDirector::new();
        assert!(fd.add_filter(flow(1), 3));
        assert_eq!(fd.steer(&flow(1)), Some(3));
        assert_eq!(fd.steer(&flow(2)), None);
        assert_eq!(fd.hits, 1);
        assert_eq!(fd.misses, 1);
    }

    #[test]
    fn capacity_bounds_table() {
        let mut fd = FlowDirector::with_capacity(2);
        assert!(fd.add_filter(flow(1), 0));
        assert!(fd.add_filter(flow(2), 1));
        assert!(!fd.add_filter(flow(3), 2));
        // Updating an existing entry still works at capacity.
        assert!(fd.add_filter(flow(1), 5));
        assert_eq!(fd.steer(&flow(1)), Some(5));
        assert_eq!(fd.len(), 2);
    }

    #[test]
    fn remove_filter_restores_rss_fallback() {
        let mut fd = FlowDirector::new();
        fd.add_filter(flow(1), 3);
        assert!(fd.remove_filter(&flow(1)));
        assert!(!fd.remove_filter(&flow(1)));
        assert_eq!(fd.steer(&flow(1)), None);
    }

    #[test]
    fn atr_learns_reverse_direction() {
        // The paper's point: FD learns from *both* directions; capture-only
        // traffic never transmits, so the table stays empty.
        let mut fd = FlowDirector::new();
        let outbound = flow(9);
        fd.learn_from_tx(&outbound, 4);
        assert_eq!(fd.steer(&outbound.reversed()), Some(4));
        assert_eq!(fd.steer(&outbound), None);
    }

    #[test]
    fn unidirectional_capture_never_populates() {
        let mut fd = FlowDirector::new();
        for i in 0..100 {
            assert_eq!(fd.steer(&flow(i)), None);
        }
        assert!(fd.is_empty());
        assert_eq!(fd.misses, 100);
    }
}
