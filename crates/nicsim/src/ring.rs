//! Receive descriptor rings.
//!
//! "For each receive queue, the NIC maintains a ring of receive
//! descriptors … A receive descriptor must be initialized and pre-allocated
//! with an empty ring buffer in host memory — in the ready state — to
//! receive a packet. … incoming packets will be dropped if the receive
//! descriptors in the ready state aren't available." (§2.1)
//!
//! [`RxRing`] implements exactly that contract. The *capture engine*
//! decides when used descriptors are re-armed — that policy difference is
//! the whole distinction between engine types in the paper:
//!
//! * Type-I (PF_RING): re-arm immediately after the kernel copies the
//!   packet out;
//! * Type-II (DNA/NETMAP): re-arm only after the application consumes the
//!   packet, so buffering is limited to the ring;
//! * WireCAP: re-arm a whole descriptor segment at once by attaching a
//!   fresh chunk from the ring buffer pool.

/// Default per-queue ring size used throughout the paper's evaluation
/// ("Each NIC receive ring is configured with a size of 1,024").
pub const DEFAULT_RING_SIZE: usize = 1024;

/// Maximum receive descriptors an 82599 provides per port; a ring may be
/// at most `8192 / queues` deep (§2.1).
pub const MAX_DESCRIPTORS: usize = 8192;

/// A receive descriptor ring.
///
/// Descriptors are tracked as an aggregate (ready count + used count)
/// plus head/tail cursors. The cursors keep FIFO semantics observable for
/// tests; the counts are what the drop logic needs.
#[derive(Debug, Clone)]
pub struct RxRing {
    size: usize,
    /// Descriptors armed with an empty buffer, available for DMA.
    ready: usize,
    /// Descriptors holding a received, not-yet-reclaimed packet.
    used: usize,
    /// Packets dropped because no descriptor was ready.
    drops: u64,
    /// Total packets successfully received into the ring.
    received: u64,
    /// Tail-pointer (doorbell) writes issued to the modelled NIC. Each
    /// write is an MMIO transaction on real hardware, so batching packets
    /// per tail advance is where descriptor-ring batching pays off.
    tail_advances: u64,
}

impl RxRing {
    /// Creates a ring with all `size` descriptors armed.
    pub fn new(size: usize) -> Self {
        assert!(size > 0 && size <= MAX_DESCRIPTORS);
        RxRing {
            size,
            ready: size,
            used: 0,
            drops: 0,
            received: 0,
            tail_advances: 0,
        }
    }

    /// Ring capacity in descriptors.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Descriptors currently armed.
    pub fn ready(&self) -> usize {
        self.ready
    }

    /// Descriptors currently holding unreclaimed packets.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Packets dropped for want of a ready descriptor.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Packets received into the ring.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Copies this ring's occupancy gauges into a telemetry snapshot:
    /// `ring_ready` armed descriptors, `ring_used` unreclaimed ones.
    pub fn fill_telemetry(&self, t: &mut telemetry::QueueTelemetry) {
        t.ring_ready = self.ready as u64;
        t.ring_used = self.used as u64;
    }

    /// Tail-pointer (doorbell) writes issued so far. The per-packet
    /// [`RxRing::dma`] path pays one per packet; [`RxRing::fill_batch`]
    /// pays one per batch.
    pub fn tail_advances(&self) -> u64 {
        self.tail_advances
    }

    /// DMA attempt: consumes one ready descriptor and advances the tail
    /// once. Returns `true` if the packet landed, `false` if it was
    /// dropped on the wire side.
    pub fn dma(&mut self) -> bool {
        if self.ready == 0 {
            self.drops += 1;
            return false;
        }
        self.ready -= 1;
        self.used += 1;
        self.received += 1;
        self.tail_advances += 1;
        true
    }

    /// Batched DMA: receives as many of `n` packets as there are ready
    /// descriptors — dropping the rest — and advances the descriptor
    /// tail **once** for the whole batch. Returns packets received.
    pub fn fill_batch(&mut self, n: u64) -> u64 {
        let landed = n.min(self.ready as u64);
        self.ready -= landed as usize;
        self.used += landed as usize;
        self.received += landed;
        self.drops += n - landed;
        if landed > 0 {
            self.tail_advances += 1;
        }
        landed
    }

    /// Bulk DMA attempt; alias of [`RxRing::fill_batch`] kept for the
    /// original burst-oriented call sites.
    pub fn dma_burst(&mut self, n: u64) -> u64 {
        self.fill_batch(n)
    }

    /// Re-arms `n` used descriptors with fresh buffers (engine policy
    /// decides when). Panics if more than `used` are reclaimed — that
    /// would mean the engine invented descriptors.
    pub fn rearm(&mut self, n: usize) {
        assert!(
            n <= self.used,
            "rearming {n} of {} used descriptors",
            self.used
        );
        self.used -= n;
        self.ready += n;
        debug_assert!(self.ready + self.used <= self.size);
    }

    /// Descriptor-conservation invariant: ready + used never exceeds the
    /// ring size (descriptors are neither created nor destroyed).
    pub fn is_consistent(&self) -> bool {
        self.ready + self.used <= self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_fully_armed() {
        let r = RxRing::new(1024);
        assert_eq!(r.ready(), 1024);
        assert_eq!(r.used(), 0);
        assert!(r.is_consistent());
    }

    #[test]
    fn dma_consumes_descriptors_then_drops() {
        let mut r = RxRing::new(4);
        for _ in 0..4 {
            assert!(r.dma());
        }
        assert!(!r.dma());
        assert_eq!(r.drops(), 1);
        assert_eq!(r.received(), 4);
        assert_eq!(r.ready(), 0);
        assert_eq!(r.used(), 4);
    }

    #[test]
    fn rearm_restores_capacity() {
        let mut r = RxRing::new(4);
        r.dma_burst(4);
        r.rearm(3);
        assert_eq!(r.ready(), 3);
        assert_eq!(r.used(), 1);
        assert!(r.dma());
        assert!(r.is_consistent());
    }

    #[test]
    fn burst_splits_between_received_and_dropped() {
        let mut r = RxRing::new(10);
        assert_eq!(r.dma_burst(25), 10);
        assert_eq!(r.drops(), 15);
        assert_eq!(r.received(), 10);
    }

    #[test]
    fn batched_fill_advances_tail_once() {
        let mut r = RxRing::new(1024);
        assert_eq!(r.fill_batch(64), 64);
        assert_eq!(r.tail_advances(), 1, "one doorbell write per batch");
        for _ in 0..64 {
            assert!(r.dma());
        }
        assert_eq!(r.tail_advances(), 65, "one doorbell write per packet");
        r.fill_batch(0);
        assert_eq!(r.tail_advances(), 65, "empty batches ring no doorbell");
    }

    #[test]
    #[should_panic(expected = "rearming")]
    fn rearm_more_than_used_panics() {
        let mut r = RxRing::new(4);
        r.dma();
        r.rearm(2);
    }

    #[test]
    #[should_panic]
    fn oversized_ring_rejected() {
        RxRing::new(MAX_DESCRIPTORS + 1);
    }

    #[test]
    fn type2_depletion_scenario() {
        // The paper's Type-II failure: packets held in the ring until the
        // app consumes them. A burst larger than the ring must drop the
        // excess no matter how it arrives.
        let mut r = RxRing::new(1024);
        let landed = r.dma_burst(2724); // the paper's queue-3 burst
        assert_eq!(landed, 1024);
        assert_eq!(r.drops(), 1700);
    }
}
