#!/usr/bin/env sh
# Tier-1 gate: formatting, lints, the full test suite, and a short run
# of the hot-path benchmark (which must produce BENCH_hotpath.json).
# Run from anywhere; everything executes at the repository root.
#
# BENCH_hotpath.json schema (written by `cargo bench -p bench --bench
# hotpath`; every entry named here is gated below):
#   results[]        per-M pipeline rates: seed_pps, batched_pps,
#                    speedup, plus telemetry/latency/span/disk-writer
#                    overheads (each with a `_raw` companion; the gates
#                    read the clamped value)
#   consumer_pool    pooled vs per-queue delivery (pool_speedup)
#   single_hot_queue claim-mode worker scaling on one queue
#                    (hotq_speedup)
#   backend_dispatch mono vs dyn queue calls
#                    (backend_dispatch_overhead)
#   flow_tracking    per-chunk flow analytics (flow_tracking_overhead)
#   latency_slo      tail-latency SLO pair (DESIGN.md section 4.16):
#                    Throughput vs CacheResident p50/p99/p99.9 at the
#                    same configured pool under saturating load; gated
#                    cache_resident_p999_ns <= throughput_p999_ns
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --check
else
    echo "    rustfmt not installed; skipping"
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "    clippy not installed; skipping"
fi

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> snapshot schema golden test"
cargo test -q --test snapshot_schema

echo "==> hot-path benchmark (quick mode)"
rm -f BENCH_hotpath.json
CRITERION_QUICK=1 cargo bench -p bench --bench hotpath
if [ ! -f BENCH_hotpath.json ]; then
    echo "FAIL: benchmark did not produce BENCH_hotpath.json" >&2
    exit 1
fi

echo "==> latency-stamping overhead budget (<= 5% at every M)"
# Seal stamps amortize per NIC poll batch and delivery stamps per
# consumer drain call (one lazy clock read each), so the budget holds
# at every chunk size — including the small-M entries where a
# per-chunk stamp used to cost the most.
awk '
    /"m":/            { m = $2 + 0 }
    /"latency_overhead":/ { sub(/,$/, "", $2); ov[m] = $2 + 0; ms[m] = 1 }
    END {
        n = 0; bad = 0
        for (m in ms) {
            n++
            printf "    m=%d latency_overhead=%.2f%%\n", m, ov[m] * 100
            if (ov[m] > 0.05) {
                printf "FAIL: latency stamping overhead %.2f%% > 5%% at m=%d\n", ov[m] * 100, m
                bad = 1
            }
        }
        if (n == 0) { print "FAIL: no latency_overhead entries"; exit 1 }
        if (bad) exit 1
    }
' BENCH_hotpath.json

echo "==> span-tracing overhead budget (<= 3% at the largest M)"
# 1-in-N lifecycle spans (stamp bookkeeping, per-stage histograms, the
# mutex-guarded span ring) are measured against the latency-stamped
# baseline at the benchmark's largest M, the paper's operating range;
# smaller M entries are recorded in the JSON for inspection.
awk '
    /"m":/            { m = $2 + 0 }
    /"span_tracing_overhead":/ { sub(/,$/, "", $2); ov[m] = $2 + 0; if (m > max_m) max_m = m }
    END {
        if (max_m == 0) { print "FAIL: no span_tracing_overhead entries"; exit 1 }
        printf "    m=%d span_tracing_overhead=%.2f%%\n", max_m, ov[max_m] * 100
        if (ov[max_m] > 0.03) {
            printf "FAIL: span tracing overhead %.2f%% > 3%% at m=%d\n", ov[max_m] * 100, max_m
            exit 1
        }
    }
' BENCH_hotpath.json

echo "==> disk-writer encode overhead budget (<= 30% at m=1, <= 50% at the largest M)"
# The capdisk writer encodes pcapng through a precomputed EPB header
# template into cursor-addressed batch storage (pure slice stores, no
# per-packet Vec bookkeeping). At m=1 the stamped baseline does
# comparable per-packet work, so the encode's instruction cost shows
# directly and is gated tight. At large M the baseline runs at memory
# speed without ever reading payload bytes, while the encode must
# stream every payload through the batch buffer — the ratio floors
# near 40% on pure memory traffic (see EXPERIMENTS.md, known
# deviations), so the large-M ceiling only guards against regressing
# back toward the old field-by-field encoder.
awk '
    /"m":/               { m = $2 + 0 }
    /"disk_writer_overhead":/ {
        sub(/,$/, "", $2); ov[m] = $2 + 0
        if (m > max_m) max_m = m
        if (min_m == 0 || m < min_m) min_m = m
    }
    END {
        if (max_m == 0) { print "FAIL: no disk_writer_overhead entries"; exit 1 }
        printf "    m=%d disk_writer_overhead=%.2f%%  m=%d disk_writer_overhead=%.2f%%\n", \
            min_m, ov[min_m] * 100, max_m, ov[max_m] * 100
        if (ov[min_m] > 0.30) {
            printf "FAIL: disk writer encode overhead %.2f%% > 30%% at m=%d\n", ov[min_m] * 100, min_m
            exit 1
        }
        if (ov[max_m] > 0.50) {
            printf "FAIL: disk writer encode overhead %.2f%% > 50%% at m=%d\n", ov[max_m] * 100, max_m
            exit 1
        }
    }
' BENCH_hotpath.json

echo "==> consumer pool speedup gate (>= 1.5x single consumer at 4q/4w)"
# The work-stealing pool must beat a single consumer on the same
# skewed workload by overlapping the blocking per-chunk I/O stage
# (DESIGN.md section 4.11). Conservation is asserted inside the bench.
awk '
    /"pool_speedup":/ { sub(/,$/, "", $2); speedup = $2 + 0; seen = 1 }
    END {
        if (!seen) { print "FAIL: no pool_speedup entry in BENCH_hotpath.json"; exit 1 }
        printf "    pool_speedup=%.2fx\n", speedup
        if (speedup < 1.5) {
            printf "FAIL: consumer pool speedup %.2fx < 1.5x\n", speedup
            exit 1
        }
    }
' BENCH_hotpath.json

echo "==> single-hot-queue speedup gate (>= 1.5x, 1q/4w vs 1q/1w, claim mode)"
# Work stealing republishes every chunk of a hot queue through the
# owning worker's deque; the COREC-style concurrent claim mode drains
# it with no middleman and must scale with the worker count
# (DESIGN.md section 4.12). Conservation is asserted in the bench.
awk '
    /"hotq_speedup":/ { sub(/,$/, "", $2); speedup = $2 + 0; seen = 1 }
    END {
        if (!seen) { print "FAIL: no hotq_speedup entry in BENCH_hotpath.json"; exit 1 }
        printf "    hotq_speedup=%.2fx\n", speedup
        if (speedup < 1.5) {
            printf "FAIL: single-hot-queue speedup %.2fx < 1.5x\n", speedup
            exit 1
        }
    }
' BENCH_hotpath.json

echo "==> backend dispatch overhead budget (<= 2%, mono vs dyn trait calls)"
# The engine reaches its queues through Arc<dyn BackendQueue> (the
# CaptureBackend abstraction, DESIGN.md section 4.13). The dynamic
# dispatch plus per-frame callback indirection must stay within 2% of
# the monomorphized nicsim path, or the trait boundary has grown a
# real per-packet cost.
awk '
    /"backend_dispatch_overhead":/ { sub(/,$/, "", $2); ov = $2 + 0; seen = 1 }
    END {
        if (!seen) { print "FAIL: no backend_dispatch_overhead entry in BENCH_hotpath.json"; exit 1 }
        printf "    backend_dispatch_overhead=%.2f%%\n", ov * 100
        if (ov > 0.02) {
            printf "FAIL: backend dispatch overhead %.2f%% > 2%%\n", ov * 100
            exit 1
        }
    }
' BENCH_hotpath.json

echo "==> flow-tracking overhead budget (<= 10% at 1M flows)"
# The per-chunk flow-analytics stage (two-pass batched ingest into a
# pre-warmed million-entry set-associative table, top-K offers, and the
# telemetry delta flush) is measured against the BPF-filtering consumer
# it rides beside. The baseline applies the filter x=10 times — a
# deliberately *light* application load, an order of magnitude below
# the paper's heavy x=300 setting (Figs. 9-10) — so the gate holds even
# when the consumer does little work, not only when its own cost
# dwarfs the flow stage (DESIGN.md section 4.15).
awk '
    /"flow_tracking_overhead":/ { sub(/,$/, "", $2); ov = $2 + 0; seen = 1 }
    END {
        if (!seen) { print "FAIL: no flow_tracking_overhead entry in BENCH_hotpath.json"; exit 1 }
        printf "    flow_tracking_overhead=%.2f%%\n", ov * 100
        if (ov > 0.10) {
            printf "FAIL: flow tracking overhead %.2f%% > 10%%\n", ov * 100
            exit 1
        }
    }
' BENCH_hotpath.json

echo "==> tail-latency SLO gate (cache-resident p99.9 <= throughput p99.9)"
# The cache-resident fast path (DESIGN.md section 4.16) exists to buy
# tail latency: at the same configured pool under saturating load, the
# LLC-sized pool with fast recycling must not show a worse p99.9 than
# the throughput-tuned pool whose backlog runs R chunks deep.
awk '
    /"throughput_p999_ns":/ { sub(/,$/, "", $2); thr = $2 + 0; seen_t = 1 }
    /"cache_resident_p999_ns":/ { sub(/,$/, "", $2); cache = $2 + 0; seen_c = 1 }
    END {
        if (!seen_t || !seen_c) { print "FAIL: no latency_slo p99.9 entries in BENCH_hotpath.json"; exit 1 }
        printf "    throughput p99.9=%dus  cache_resident p99.9=%dus\n", thr / 1000, cache / 1000
        if (cache > thr) {
            printf "FAIL: cache-resident p99.9 %dus exceeds throughput p99.9 %dus\n", cache / 1000, thr / 1000
            exit 1
        }
    }
' BENCH_hotpath.json

echo "==> BENCH_hotpath.json gated-entry completeness"
# Every key a gate above reads must be present: a refactor that drops
# one from the benchmark output must fail here, not silently skip its
# gate on the next edit.
for key in latency_overhead span_tracing_overhead disk_writer_overhead pool_speedup hotq_speedup backend_dispatch_overhead flow_tracking_overhead latency_slo throughput_p999_ns cache_resident_p999_ns; do
    if ! grep -q "\"$key\":" BENCH_hotpath.json; then
        echo "FAIL: BENCH_hotpath.json is missing gated entry \"$key\"" >&2
        exit 1
    fi
done
echo "    all gated keys present"

echo "==> backend conformance suite (nicsim + shmring, release)"
# Both CaptureBackend implementations must pass the identical
# conservation, zero-allocation, and teardown contracts — the suites
# iterate over [nicsim, shmring] internally and label failures by
# backend name.
cargo test -q --release --test engine_conformance
cargo test -q --release --test offload_conservation

echo "==> claim CAS protocol: exhaustive two-thread interleavings"
cargo test -q --release --test claim_interleavings

echo "==> in-order claim conservation (reorder buffer + forced stop)"
cargo test -q --release --test inorder_conservation

echo "==> work-stealing conservation smoke (two-thread steal + forced stop)"
cargo test -q --release --test steal_conservation

echo "==> flow-count conservation (eviction pressure, forced stop, both claim modes)"
cargo test -q --release --test flow_conservation

echo "==> multi-core delivery scaling point (2 workers, small)"
# Writes to a scratch directory so the full-scale results/ artifacts
# referenced by EXPERIMENTS.md are not clobbered by the smoke run.
cargo run -q --release -p bench --bin fig_scaling -- --small --out target/check-scaling

echo "==> online flow analytics point (2k flows, 2 workers, small)"
# Conservation and (eviction-free) exact top-16 are asserted inside
# the binary at every point.
cargo run -q --release -p bench --bin fig_flows -- --small --out target/check-flows

echo "==> tail-latency sweep point (pool size x load x tuning, small)"
# Conservation is asserted inside the binary at every point; the
# headline pair (largest pool, saturating load) is echoed in the
# table title.
cargo run -q --release -p bench --bin fig_latency -- --small --out target/check-latency

echo "==> capture-to-disk smoke (conservation + rotation + degradation)"
cargo test -q --test capture_to_disk

echo "==> scrape endpoint + sampler escape hatch (live run)"
# Covers both ends of the env contract: endpoint live during a real
# threaded capture run, and engines still building/running with the
# sampler disabled (WIRECAP_TELEMETRY_SAMPLE_MS=0).
cargo test -q --test telemetry_endpoint

echo "==> /trace.json is valid Chrome trace-event JSON"
# The telemetry_endpoint test scrapes a fully span-sampled live run and
# leaves the /trace.json body at target/check-trace.json. Validate it
# as what chrome://tracing / Perfetto load: a JSON array of event
# objects, each carrying ph/ts/pid/tid.
if [ ! -f target/check-trace.json ]; then
    echo "FAIL: telemetry_endpoint did not leave target/check-trace.json" >&2
    exit 1
fi
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json, sys
with open("target/check-trace.json") as f:
    events = json.load(f)
assert isinstance(events, list), "trace must be an array"
assert events, "trace must not be empty"
for e in events:
    assert isinstance(e, dict), f"non-object event: {e!r}"
    for key in ("ph", "ts", "pid", "tid"):
        assert key in e, f"event missing {key}: {e!r}"
assert any(e["ph"] == "X" for e in events), "no complete (span) events"
print(f"    {len(events)} trace events, all carrying ph/ts/pid/tid")
EOF
else
    # No python3: structural spot checks only.
    head -c1 target/check-trace.json | grep -q '\[' || {
        echo "FAIL: trace.json is not a JSON array" >&2; exit 1; }
    for key in '"ph"' '"ts"' '"pid"' '"tid"'; do
        grep -q "$key" target/check-trace.json || {
            echo "FAIL: trace.json has no $key fields" >&2; exit 1; }
    done
    echo "    trace.json structural checks passed (python3 unavailable)"
fi

echo "==> escape hatch: figure harness runs with the sampler disabled"
WIRECAP_TELEMETRY_SAMPLE_MS=0 WIRECAP_TELEMETRY_LISTEN= \
    cargo run -q --release --example quickstart >/dev/null

echo "==> all checks passed"
