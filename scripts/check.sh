#!/usr/bin/env sh
# Tier-1 gate: formatting, lints, the full test suite, and a short run
# of the hot-path benchmark (which must produce BENCH_hotpath.json).
# Run from anywhere; everything executes at the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --check
else
    echo "    rustfmt not installed; skipping"
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "    clippy not installed; skipping"
fi

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> snapshot schema golden test"
cargo test -q --test snapshot_schema

echo "==> hot-path benchmark (quick mode)"
rm -f BENCH_hotpath.json
CRITERION_QUICK=1 cargo bench -p bench --bench hotpath
if [ ! -f BENCH_hotpath.json ]; then
    echo "FAIL: benchmark did not produce BENCH_hotpath.json" >&2
    exit 1
fi

echo "==> all checks passed"
